package notary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Committee is the notary-committee realisation of the transaction manager:
// m = 3f+1 notaries of which at most f are unreliable, running a
// leader-based two-phase agreement protocol with view changes in the
// tradition of the partially synchronous consensus of Dwork, Lynch and
// Stockmeyer (and its practical descendant PBFT).
//
// One decision (commit or abort) is agreed per payment:
//
//   - the leader of the current view broadcasts a pre-prepare carrying the
//     decision it proposes;
//   - a notary that can justify the decision (all escrows prepared for
//     commit; an abort request received for abort) broadcasts a prepare vote;
//   - 2f+1 prepare votes for the same (decision, view) form a prepared
//     certificate: the notary locks on the decision and broadcasts a commit
//     vote;
//   - 2f+1 commit votes decide: the notary assembles the decision
//     certificate and broadcasts it to every participant and notary;
//   - if a view stalls, notaries change views (with exponentially... linearly
//     growing timeouts); locked decisions are carried into the next view so
//     that a decision that might already have been reached is never
//     contradicted (safety), and stale locks can be released against a newer
//     prepared certificate (liveness).
//
// Safety (certificate consistency) needs only f < m/3; liveness additionally
// needs partial synchrony: after GST a view led by an honest notary decides
// within a bounded number of message delays.
type Committee struct {
	deps   Deps
	size   int
	f      int
	quorum int
	ids    []string
	procs  map[string]*notaryProc

	commitIssued bool
	abortIssued  bool
}

// NewCommittee creates a committee of size notaries (size should be 3f+1 for
// the intended fault tolerance; any size >= 1 is accepted so experiments can
// explore broken configurations), registers every notary on the network and
// returns the committee handle.
func NewCommittee(d Deps, size int) *Committee {
	if size < 1 {
		size = 1
	}
	c := &Committee{
		deps:  d,
		size:  size,
		f:     (size - 1) / 3,
		procs: map[string]*notaryProc{},
	}
	c.quorum = 2*c.f + 1
	for j := 0; j < size; j++ {
		id := core.NotaryID(j)
		c.ids = append(c.ids, id)
		if !d.Kr.Has(id) {
			d.Kr.Add(d.KeySeed, id)
		}
	}
	for j := 0; j < size; j++ {
		id := core.NotaryID(j)
		p := &notaryProc{
			committee:   c,
			id:          id,
			index:       j,
			fault:       d.faultOf(id),
			prepared:    map[string]bool{},
			prepVotes:   map[string]map[string]bool{},
			commitVotes: map[string]map[string]bool{},
			preparedIn:  map[int]sig.Decision{},
			viewChanges: map[int]map[string]lockInfo{},
		}
		c.procs[id] = p
		d.Net.Register(p)
		if p.fault.Crash {
			p := p
			d.Eng.ScheduleAt(p.fault.CrashAt, "crash:"+id, func() { p.crashed = true })
		}
	}
	return c
}

// IDs implements Manager.
func (c *Committee) IDs() []string { return append([]string(nil), c.ids...) }

// Quorum implements Manager.
func (c *Committee) Quorum() int { return c.quorum }

// Size returns the committee size.
func (c *Committee) Size() int { return c.size }

// MaxFaulty returns f, the number of unreliable notaries the committee
// tolerates by design.
func (c *Committee) MaxFaulty() int { return c.f }

// CommitIssued implements Manager.
func (c *Committee) CommitIssued() bool { return c.commitIssued }

// AbortIssued implements Manager.
func (c *Committee) AbortIssued() bool { return c.abortIssued }

// leaderOf returns the leader notary ID of a view (round-robin rotation).
func (c *Committee) leaderOf(view int) string {
	return core.NotaryID(view % c.size)
}

// viewTimeout is the time a notary waits in one view before changing views;
// it grows with the view number so that, under partial synchrony, views
// eventually outlast the (unknown) post-GST message delay.
func (c *Committee) viewTimeout(view int) sim.Time {
	base := 8*c.deps.Timing.MaxMsgDelay + 6*c.deps.Timing.MaxProcessing
	return base * sim.Time(view+1)
}

// maxViews bounds how many views a notary will attempt before giving up on
// the decision for this run. It is large enough that every notary leads many
// times (liveness after GST needs only one honest-led view), while keeping
// runs with a permanently deadlocked committee — e.g. a third or more of the
// notaries silent, which the paper explicitly excludes — finite.
const maxViews = 64

// recordIssued notes a valid decision certificate observed anywhere in the
// committee (feeds the CC property and the run result).
func (c *Committee) recordIssued(d sig.Decision) {
	switch d {
	case sig.DecisionCommit:
		c.commitIssued = true
	case sig.DecisionAbort:
		c.abortIssued = true
	}
}

// Committee-internal messages (in addition to those in notary.go).

// MsgPrePrepare is the leader's proposal for a view. When the proposal
// carries over a locked decision from an earlier view, LockView and
// LockVoters document the prepared certificate justifying it.
type MsgPrePrepare struct {
	PaymentID string
	Decision  sig.Decision
	View      int
	Leader    string
	// LockView/LockVoters justify a carried-over lock ( LockView < View ).
	LockView   int
	LockVoters []string
}

// Describe implements netsim.Message.
func (m MsgPrePrepare) Describe() string {
	return fmt.Sprintf("pre-prepare(%s,v%d by %s)", m.Decision, m.View, m.Leader)
}

// MsgPrepare is a notary's first-phase vote.
type MsgPrepare struct {
	PaymentID string
	Decision  sig.Decision
	View      int
	Voter     string
}

// Describe implements netsim.Message.
func (m MsgPrepare) Describe() string {
	return fmt.Sprintf("prepare(%s,v%d by %s)", m.Decision, m.View, m.Voter)
}

// MsgCommitVote is a notary's second-phase vote, sent once it holds a
// prepared certificate (2f+1 prepares) for the decision.
type MsgCommitVote struct {
	PaymentID string
	Decision  sig.Decision
	View      int
	Voter     string
}

// Describe implements netsim.Message.
func (m MsgCommitVote) Describe() string {
	return fmt.Sprintf("commit-vote(%s,v%d by %s)", m.Decision, m.View, m.Voter)
}

// MsgViewChange announces that a notary moves to a new view, reporting its
// current lock (if any) so the new leader can carry it over.
type MsgViewChange struct {
	PaymentID string
	NewView   int
	Voter     string
	// Locked reports the decision the notary is locked on (empty if none)
	// and the view in which the lock was acquired.
	Locked   sig.Decision
	LockView int
}

// Describe implements netsim.Message.
func (m MsgViewChange) Describe() string {
	return fmt.Sprintf("view-change(v%d by %s)", m.NewView, m.Voter)
}

// lockInfo is a reported lock inside a view-change quorum.
type lockInfo struct {
	decision sig.Decision
	view     int
}

// notaryProc is one notary's state machine.
type notaryProc struct {
	committee *Committee
	id        string
	index     int
	fault     core.FaultSpec
	crashed   bool

	// Evidence gathered from the payment protocol.
	prepared       map[string]bool
	abortRequested bool

	// Agreement state.
	view       int
	preparedIn map[int]sig.Decision // prepare vote cast per view
	// prepVotes[decision|view][voter] / commitVotes[...] collect votes.
	prepVotes   map[string]map[string]bool
	commitVotes map[string]map[string]bool
	// lock is the decision this notary holds a prepared certificate for.
	lock     sig.Decision
	lockView int
	// committedIn records whether this notary already sent its commit vote
	// for (decision, view).
	sentCommit map[string]bool

	pendingPrePrepare *MsgPrePrepare
	viewChanges       map[int]map[string]lockInfo
	proposedView      map[int]bool

	decided     bool
	decidedCert sig.DecisionCert

	timerArmed bool
}

// ID implements netsim.Node.
func (p *notaryProc) ID() string { return p.id }

func (p *notaryProc) deps() Deps   { return p.committee.deps }
func (p *notaryProc) active() bool { return !p.crashed && !p.fault.Silent }

func voteKey(d sig.Decision, view int) string { return fmt.Sprintf("%s|%d", d, view) }

// Deliver implements netsim.Node.
func (p *notaryProc) Deliver(from string, msg netsim.Message) {
	if !p.active() {
		return
	}
	switch m := msg.(type) {
	case MsgPrepared:
		p.onEvidencePrepared(m)
	case MsgAbortRequest:
		p.onEvidenceAbort(m)
	case MsgPrePrepare:
		p.onPrePrepare(from, m)
	case MsgPrepare:
		p.onPrepare(m)
	case MsgCommitVote:
		p.onCommitVote(m)
	case MsgViewChange:
		p.onViewChange(m)
	case MsgDecision:
		p.onDecision(m)
	}
}

// grounds returns the decision this notary currently has evidence for;
// abort requests take precedence (a customer exercised her right to leave).
func (p *notaryProc) grounds() (sig.Decision, bool) {
	if p.abortRequested {
		return sig.DecisionAbort, true
	}
	if len(p.prepared) >= p.deps().NumEscrows {
		return sig.DecisionCommit, true
	}
	return "", false
}

func (p *notaryProc) onEvidencePrepared(m MsgPrepared) {
	if m.PaymentID != p.deps().PaymentID || p.decided {
		return
	}
	p.prepared[m.Escrow] = true
	p.act()
}

func (p *notaryProc) onEvidenceAbort(m MsgAbortRequest) {
	if m.PaymentID != p.deps().PaymentID || p.decided {
		return
	}
	p.abortRequested = true
	p.act()
}

// act runs whenever the notary's evidence changes: arm the view timer,
// propose if leading, and re-examine a buffered pre-prepare.
func (p *notaryProc) act() {
	if p.decided {
		return
	}
	if _, ok := p.grounds(); !ok {
		return
	}
	p.armTimer()
	p.maybePropose()
	if p.pendingPrePrepare != nil {
		pp := *p.pendingPrePrepare
		p.pendingPrePrepare = nil
		p.onPrePrepare(pp.Leader, pp)
	}
}

func (p *notaryProc) armTimer() {
	if p.timerArmed {
		return
	}
	p.timerArmed = true
	p.scheduleViewChange(p.view)
}

func (p *notaryProc) scheduleViewChange(view int) {
	if view >= maxViews {
		return
	}
	d := p.deps()
	d.Eng.ScheduleIn(p.committee.viewTimeout(view), p.id+":view-timer", func() {
		if !p.active() || p.decided || p.view != view {
			return
		}
		p.moveToView(view + 1)
	})
}

// moveToView advances to a later view, announces the change (with the
// current lock) to the whole committee and restarts the timer.
func (p *notaryProc) moveToView(v int) {
	if v <= p.view && p.timerArmed {
		return
	}
	d := p.deps()
	p.view = v
	if d.Tr.Recording() {
		d.Tr.Add(d.Eng.Now(), trace.KindConsensus, p.id, "", fmt.Sprintf("view-change to %d", v))
	}
	vc := MsgViewChange{PaymentID: d.PaymentID, NewView: v, Voter: p.id, Locked: p.lock, LockView: p.lockView}
	for _, nid := range p.committee.ids {
		if nid != p.id {
			d.Net.Send(p.id, nid, vc)
		}
	}
	p.onViewChange(vc)
	p.maybePropose()
	p.scheduleViewChange(v)
}

// onViewChange records a peer's view-change and, if this notary leads the
// announced view, considers proposing.
func (p *notaryProc) onViewChange(m MsgViewChange) {
	d := p.deps()
	if m.PaymentID != d.PaymentID || p.decided {
		return
	}
	if p.viewChanges[m.NewView] == nil {
		p.viewChanges[m.NewView] = map[string]lockInfo{}
	}
	p.viewChanges[m.NewView][m.Voter] = lockInfo{decision: m.Locked, view: m.LockView}
	// Catch up if a majority of the committee is already past this view.
	if m.NewView > p.view && len(p.viewChanges[m.NewView]) > p.committee.size/2 {
		p.moveToView(m.NewView)
	}
	p.maybePropose()
}

// maybePropose broadcasts a pre-prepare if this notary leads the current
// view and has something to propose: a lock carried over from a view-change
// report, or its own grounds.
func (p *notaryProc) maybePropose() {
	d := p.deps()
	if p.decided || p.committee.leaderOf(p.view) != p.id {
		return
	}
	if p.proposedView == nil {
		p.proposedView = map[int]bool{}
	}
	if p.proposedView[p.view] {
		return
	}
	// Choose the value: the highest-view lock reported for this view (or our
	// own lock), falling back to our own grounds.
	dec, lockView, haveLock := p.chooseValue()
	if !haveLock {
		var ok bool
		dec, ok = p.grounds()
		if !ok {
			return
		}
		lockView = -1
	}
	p.proposedView[p.view] = true
	send := func(dec sig.Decision, lv int) {
		pp := MsgPrePrepare{PaymentID: d.PaymentID, Decision: dec, View: p.view, Leader: p.id, LockView: lv}
		if d.Tr.Recording() {
			d.Tr.Add(d.Eng.Now(), trace.KindConsensus, p.id, "", fmt.Sprintf("propose %s in view %d", dec, p.view))
		}
		for _, nid := range p.committee.ids {
			if nid != p.id {
				d.Net.Send(p.id, nid, pp)
			}
		}
		p.onPrePrepare(p.id, pp)
	}
	send(dec, lockView)
	if p.fault.Equivocate {
		other := sig.DecisionAbort
		if dec == sig.DecisionAbort {
			other = sig.DecisionCommit
		}
		send(other, -1)
	}
}

// chooseValue returns the locked decision with the highest lock view among
// this notary's own lock and the locks reported in view-change messages for
// the current view.
func (p *notaryProc) chooseValue() (sig.Decision, int, bool) {
	best := lockInfo{view: -1}
	if p.lock != "" {
		best = lockInfo{decision: p.lock, view: p.lockView}
	}
	for _, li := range p.viewChanges[p.view] {
		if li.decision != "" && li.view > best.view {
			best = li
		}
	}
	if best.decision == "" {
		return "", -1, false
	}
	return best.decision, best.view, true
}

// onPrePrepare handles the leader's proposal: send a prepare vote if the
// decision is justified and not in conflict with this notary's lock.
func (p *notaryProc) onPrePrepare(from string, m MsgPrePrepare) {
	d := p.deps()
	if m.PaymentID != d.PaymentID || p.decided {
		return
	}
	if from != m.Leader || p.committee.leaderOf(m.View) != m.Leader || m.View < p.view {
		return
	}
	if _, voted := p.preparedIn[m.View]; voted && !p.fault.Equivocate {
		return
	}
	// Lock rule: a locked notary only prepares its locked decision, unless
	// the proposal documents a lock from a strictly later view.
	if p.lock != "" && p.lock != m.Decision && m.LockView <= p.lockView {
		return
	}
	// Justification: the decision must follow from this notary's own
	// evidence, or carry over an earlier lock.
	justified := m.LockView >= 0 || p.fault.Equivocate
	if !justified {
		switch m.Decision {
		case sig.DecisionCommit:
			justified = len(p.prepared) >= d.NumEscrows
		case sig.DecisionAbort:
			justified = p.abortRequested
		}
	}
	if !justified {
		cp := m
		p.pendingPrePrepare = &cp
		return
	}
	if m.View > p.view {
		p.moveToView(m.View)
	}
	p.preparedIn[m.View] = m.Decision
	vote := MsgPrepare{PaymentID: d.PaymentID, Decision: m.Decision, View: m.View, Voter: p.id}
	for _, nid := range p.committee.ids {
		if nid != p.id {
			d.Net.Send(p.id, nid, vote)
		}
	}
	p.onPrepare(vote)
}

// onPrepare collects first-phase votes; a quorum locks the decision and
// triggers the commit vote.
func (p *notaryProc) onPrepare(m MsgPrepare) {
	d := p.deps()
	if m.PaymentID != d.PaymentID || p.decided {
		return
	}
	key := voteKey(m.Decision, m.View)
	if p.prepVotes[key] == nil {
		p.prepVotes[key] = map[string]bool{}
	}
	p.prepVotes[key][m.Voter] = true
	if len(p.prepVotes[key]) < p.committee.quorum {
		return
	}
	if p.sentCommit == nil {
		p.sentCommit = map[string]bool{}
	}
	if p.sentCommit[key] {
		return
	}
	p.sentCommit[key] = true
	// Prepared certificate reached: lock and vote to commit.
	if m.View >= p.lockView || p.lock == "" {
		p.lock = m.Decision
		p.lockView = m.View
	}
	cv := MsgCommitVote{PaymentID: d.PaymentID, Decision: m.Decision, View: m.View, Voter: p.id}
	for _, nid := range p.committee.ids {
		if nid != p.id {
			d.Net.Send(p.id, nid, cv)
		}
	}
	p.onCommitVote(cv)
}

// onCommitVote collects second-phase votes; a quorum decides.
func (p *notaryProc) onCommitVote(m MsgCommitVote) {
	d := p.deps()
	if m.PaymentID != d.PaymentID || p.decided {
		return
	}
	key := voteKey(m.Decision, m.View)
	if p.commitVotes[key] == nil {
		p.commitVotes[key] = map[string]bool{}
	}
	p.commitVotes[key][m.Voter] = true
	if len(p.commitVotes[key]) < p.committee.quorum {
		return
	}
	// Decision reached: assemble the certificate from the committing voters
	// (deterministic order) and broadcast it.
	signers := make([]string, 0, p.committee.quorum)
	for _, nid := range p.committee.ids {
		if p.commitVotes[key][nid] {
			signers = append(signers, nid)
		}
	}
	cert := sig.NewCommitteeDecisionCert(d.Kr, d.PaymentID, m.Decision, core.ManagerID, d.Eng.Now(), signers, p.committee.quorum)
	p.adopt(cert)
	d.Tr.AddLazy(d.Eng.Now(), trace.KindDecision, p.id, "", cert.Describe)
	if p.fault.WithholdCertificate {
		return
	}
	for _, id := range d.Recipients {
		d.Net.Send(p.id, id, MsgDecision{Cert: cert})
	}
	for _, nid := range p.committee.ids {
		if nid != p.id {
			d.Net.Send(p.id, nid, MsgDecision{Cert: cert})
		}
	}
}

// onDecision adopts a certificate assembled by another notary.
func (p *notaryProc) onDecision(m MsgDecision) {
	d := p.deps()
	if m.Cert.PaymentID != d.PaymentID {
		return
	}
	if !m.Cert.Verify(d.Kr) || len(m.Cert.Signers) < p.committee.quorum {
		return
	}
	p.adopt(m.Cert)
}

func (p *notaryProc) adopt(cert sig.DecisionCert) {
	p.committee.recordIssued(cert.Decision)
	if p.decided {
		return
	}
	p.decided = true
	p.decidedCert = cert
}
