// Package xchainpay is the public facade of this reproduction of
// "Feasibility of Cross-Chain Payment with Success Guarantees" (van
// Glabbeek, Gramoli, Tholoniat; SPAA 2020).
//
// It exposes, behind a small API, everything a user needs to set up a
// cross-chain payment scenario on the Fig. 1 topology (Alice, connectors,
// Bob, and one escrow per adjacent pair), pick a protocol and a network
// timing model, execute the payment deterministically on the built-in
// discrete-event simulator, and check the outcome against the correctness
// properties of the paper's Definitions 1 and 2:
//
//	s := xchainpay.NewScenario(3, 42) // 3 escrows, RNG seed 42
//	res, err := xchainpay.TimeBounded().Run(s)
//	report := xchainpay.CheckTimeBounded(res, xchainpay.TimeBounded().ParamsFor(s).Bound)
//	fmt.Print(report)
//
// Four protocol families are provided:
//
//   - TimeBounded / TimeBoundedANTA / TimeBoundedNaive — the paper's primary
//     contribution (Theorem 1, Figure 2): the Interledger universal protocol
//     fine-tuned for clock drift, as plain processes or as the Figure-2
//     timed automata, plus the drift-unaware ablation.
//   - WeakLiveness / WeakLivenessCommittee — the Theorem-3 protocol with an
//     external transaction manager (a single trusted party or a BFT notary
//     committee) that tolerates partial synchrony.
//   - HTLCBaseline — the hashed-timelock chain the related work relies on.
//   - The cross-chain deal protocols of Herlihy et al. live in
//     internal/deals and are reached through the experiment harness (E6).
//
// Beyond single payments, the traffic subsystem multiplexes many concurrent
// payments over one shared escrow chain with bounded liquidity:
//
//	w := xchainpay.NewWorkload(1000)           // 1000 payments, Poisson arrivals
//	tr, err := xchainpay.RunTraffic(s, w)      // deterministic in (s.Seed, w)
//	fmt.Print(tr)                              // success rate, throughput, latency
//
// Million-payment workloads run through the streaming pipeline
// (TrafficConfig.Stream), whose peak memory is independent of the payment
// count. See internal/traffic, experiment E9, cmd/xchain-traffic and
// examples/traffic.
//
// The experiment harness regenerating every artefact of the paper is in
// internal/bench and is exposed through cmd/xchain-bench and the root-level
// benchmarks in bench_test.go.
package xchainpay

import (
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/htlc"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/scenariogen"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timelock"
	"repro/internal/traffic"
	"repro/internal/weaklive"
)

// Re-exported model types. The underlying definitions live in internal/core;
// the aliases make the public API self-contained for downstream users.
type (
	// Scenario fully describes one protocol run: topology, payment, timing
	// assumptions, network model, faults, patience and seed.
	Scenario = core.Scenario
	// Topology is the Fig. 1 chain of customers and escrows.
	Topology = core.Topology
	// PaymentSpec fixes the agreed per-hop amounts.
	PaymentSpec = core.PaymentSpec
	// Timing bundles the synchrony parameters protocols are configured with.
	Timing = core.Timing
	// FaultSpec describes how a Byzantine participant deviates.
	FaultSpec = core.FaultSpec
	// Protocol is the common interface of all payment protocols.
	Protocol = core.Protocol
	// RunResult is the full record of one protocol execution.
	RunResult = core.RunResult
	// CustomerOutcome is one customer's view of the outcome.
	CustomerOutcome = core.CustomerOutcome
	// Property identifies one correctness property of Definitions 1 and 2.
	Property = core.Property
	// Report carries one verdict per property for a run.
	Report = check.Report
	// Time is simulated time in microseconds.
	Time = sim.Time
	// Workload describes a population of concurrent payments offered to one
	// escrow chain (arrival process, sizes, hotspots, protocol mix).
	Workload = traffic.Workload
	// TrafficResult aggregates a multi-payment traffic run: success rate,
	// throughput, latency percentiles and the audited liquidity ledgers.
	TrafficResult = traffic.Result
	// TrafficPayment records one payment's fate in a traffic run.
	TrafficPayment = traffic.PaymentResult
	// TrafficConfig tunes traffic execution (worker-pool size, protocol
	// registry, streaming versus materialised mode and per-payment record
	// retention) without affecting aggregate results.
	TrafficConfig = traffic.Config
	// TrafficPoint is one cell of a traffic parameter sweep.
	TrafficPoint = traffic.Point
	// TrafficOutcome pairs a sweep cell with its result.
	TrafficOutcome = traffic.Outcome
	// Arrival describes when a workload's payments enter the system.
	Arrival = traffic.Arrival
	// ArrivalKind selects a workload's arrival process.
	ArrivalKind = traffic.ArrivalKind
	// AmountDist describes how large a workload's payments are.
	AmountDist = traffic.AmountDist
	// AmountKind selects a workload's payment-size distribution.
	AmountKind = traffic.AmountKind
	// ProtocolShare weights one protocol within a mixed workload.
	ProtocolShare = traffic.ProtocolShare
	// TrafficFaultPlan is a deterministic, seed-derived schedule turning a
	// fraction of a traffic run's connectors Byzantine mid-run, with optional
	// recovery windows and a weak-liveness manager outage. Attach it via
	// Workload.Faults; the zero value keeps every connector honest.
	TrafficFaultPlan = traffic.FaultPlan
	// TrafficDropCause attributes a queue-expiry drop to the attacker
	// (faulted path) or to plain capacity starvation.
	TrafficDropCause = traffic.DropCause
	// TrafficSnapshot is a restartable mid-run checkpoint of a traffic run:
	// admission position, in-flight payments, ledger books, aggregate state.
	// Produce one via TrafficConfig.CheckpointEvery/CheckpointPath, reload it
	// with LoadTrafficSnapshot, and resume via TrafficConfig.Resume.
	TrafficSnapshot = traffic.RunSnapshot
	// TrafficControl requests cooperative interruption of a traffic run;
	// the run stops at the next payment boundary (writing a final
	// checkpoint if configured) and returns ErrTrafficInterrupted.
	TrafficControl = traffic.Control
	// TrafficConfigMismatchError reports a resume attempt whose scenario or
	// workload differs from the one the snapshot was taken under.
	TrafficConfigMismatchError = traffic.ConfigMismatchError
	// Histogram is the streaming log-bucketed histogram used by traffic
	// runs that drop per-payment records: exact mean/min/max/sum, and
	// percentile estimates within 1% relative error in constant memory.
	Histogram = stats.Histogram
	// ScenarioSpec is a fully serialisable random scenario produced by the
	// property-based fuzzer: protocol family, chain, amounts, timing,
	// schedule (within or violating the synchrony envelope), faults and
	// patience, reconstructible byte-identically from JSON.
	ScenarioSpec = scenariogen.Spec
	// ScenarioOutcome is the fuzzer oracle's evaluation of one generated
	// scenario: owed-property violations (bugs) versus expected
	// theorem-shaped failures.
	ScenarioOutcome = scenariogen.Outcome
	// FuzzOptions configures a fuzzing campaign over consecutive seeds.
	FuzzOptions = scenariogen.Options
	// FuzzStats aggregates a fuzzing campaign.
	FuzzStats = scenariogen.Stats
	// ScenarioReplay is a saved counterexample: a spec plus the outcome it
	// must reproduce deterministically.
	ScenarioReplay = scenariogen.Replay
	// MetricsRegistry is a concurrency-safe registry of counters, gauges
	// and log-bucketed histograms with Prometheus text exposition
	// (WriteProm). Attach one via Scenario.Metrics or
	// TrafficConfig.Metrics to observe a run live; instrumentation is
	// observation-only and never changes a result (see internal/metrics).
	MetricsRegistry = metrics.Registry
	// MetricFamily is one metric family of a registry snapshot.
	MetricFamily = metrics.Family
)

// Workload arrival processes and amount distributions, re-exported.
const (
	ArrivalPoisson    = traffic.ArrivalPoisson
	ArrivalUniform    = traffic.ArrivalUniform
	ArrivalBurst      = traffic.ArrivalBurst
	AmountFixed       = traffic.AmountFixed
	AmountUniform     = traffic.AmountUniform
	AmountExponential = traffic.AmountExponential
)

// Drop causes recorded on dropped traffic payments, re-exported.
const (
	DropCapacity    = traffic.CauseCapacity
	DropFaultedPath = traffic.CauseFaultedPath
)

// DefaultTrafficFaultBehaviours returns the adversary behaviours a
// TrafficFaultPlan draws from when none are configured.
func DefaultTrafficFaultBehaviours() []string { return traffic.DefaultFaultBehaviours() }

// ErrTrafficInterrupted is returned by RunTrafficWith when a run stops early
// because its TrafficControl was tripped or TrafficConfig.InterruptAt was
// reached; the final checkpoint (if configured) has been written.
var ErrTrafficInterrupted = traffic.ErrInterrupted

// LoadTrafficSnapshot reads and validates a traffic checkpoint file written
// by a run configured with TrafficConfig.CheckpointPath. Corrupt, truncated
// or wrong-version files are rejected, never half-loaded.
func LoadTrafficSnapshot(path string) (*TrafficSnapshot, error) {
	return traffic.LoadSnapshot(path)
}

// Time units, re-exported for scenario construction.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// Signature backend names, re-exported for Scenario.Crypto /
// TrafficConfig.Crypto. Authentication is a model assumption of the paper,
// so the backend never changes a verdict — only how much CPU each run spends
// on it (ed25519 = real asymmetric signatures, hmac = derived-key SHA-256
// MACs, ~100x cheaper; see internal/sig).
const (
	CryptoEd25519 = sig.BackendEd25519
	CryptoHMAC    = sig.BackendHMAC
)

// SigStats carries the authentication-layer cache counters (process-wide
// key cache and per-keyring verification memo).
type SigStats = sig.Stats

// CryptoBackends lists the available signature backend names.
func CryptoBackends() []string { return sig.BackendNames() }

// CryptoStats returns the process-wide authentication cache counters.
func CryptoStats() SigStats { return sig.GlobalStats() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewLabeledMetricsRegistry returns a registry whose every sample carries
// the given base label pairs (e.g. "run", "run-0001"), so multiple
// registries can be merged into one exposition (metrics.WriteProm).
func NewLabeledMetricsRegistry(labelPairs ...string) *MetricsRegistry {
	return metrics.NewLabeledRegistry(labelPairs...)
}

// RegisterCryptoMetrics exposes the process-wide authentication cache
// counters (CryptoStats) on r under their canonical xchain_sig_* names,
// read live at scrape time. A nil registry is a no-op.
func RegisterCryptoMetrics(r *MetricsRegistry) { sig.RegisterMetrics(r) }

// NewScenario returns a ready-to-run scenario for a chain with n escrows
// (n+1 customers), a synchronous network at the default timing, a
// commissioned payment to Bob, and no faults. Adjust it with the
// With*/Set* methods of Scenario before running.
func NewScenario(n int, seed int64) Scenario { return core.NewScenario(n, seed) }

// NewTopology returns the Fig. 1 topology with n escrows.
func NewTopology(n int) Topology { return core.NewTopology(n) }

// DefaultTiming returns the timing assumptions used across the experiments.
func DefaultTiming() Timing { return core.DefaultTiming() }

// Synchronous returns the Theorem-1 network model: every message is
// delivered within the bound delta.
func Synchronous(delta Time) netsim.DelayModel {
	return netsim.Synchronous{Min: 1 * sim.Millisecond, Max: delta}
}

// PartiallySynchronous returns the Theorem-2/3 network model: messages may
// be delayed arbitrarily (up to maxPreGST) before the global stabilisation
// time gst and respect delta afterwards.
func PartiallySynchronous(gst, delta, maxPreGST Time) netsim.DelayModel {
	return netsim.PartialSynchrony{GST: gst, Delta: delta, MaxPreGST: maxPreGST}
}

// TimeBounded returns the paper's time-bounded protocol (Theorem 1, Fig. 2):
// the Interledger universal protocol fine-tuned for clock drift, executed by
// the process engine.
func TimeBounded() *timelock.Protocol { return timelock.New() }

// TimeBoundedANTA returns the same protocol executed as the Figure-2 timed
// automata on the generic ANTA interpreter.
func TimeBoundedANTA() *timelock.Protocol { return timelock.NewANTA() }

// TimeBoundedNaive returns the drift-unaware ablation (the plain Interledger
// universal protocol), used by ablation A1.
func TimeBoundedNaive() *timelock.Protocol { return timelock.NewNaive() }

// WeakLiveness returns the Theorem-3 protocol with a single trusted
// transaction manager.
func WeakLiveness() *weaklive.Protocol { return weaklive.New() }

// WeakLivenessCommittee returns the Theorem-3 protocol with a notary
// committee of the given size (3f+1 tolerates f unreliable notaries) as
// transaction manager.
func WeakLivenessCommittee(size int) *weaklive.Protocol { return weaklive.NewCommittee(size) }

// HTLCBaseline returns the hashed-timelock baseline protocol.
func HTLCBaseline() *htlc.Protocol { return htlc.New() }

// NewWorkload returns a default traffic workload of n payments: Poisson
// arrivals at 100/s, fixed size, all time-bounded protocol, auto-sized
// liquidity. Adjust its fields or use its With* methods before running.
func NewWorkload(n int) Workload { return traffic.NewWorkload(n) }

// RunTraffic executes the workload as many concurrent payments multiplexed
// over the scenario's escrow chain, with per-payment simulations fanned out
// across one worker per CPU. The result is deterministic in
// (Scenario.Seed, Workload) regardless of the worker count.
func RunTraffic(s Scenario, w Workload) (*TrafficResult, error) { return traffic.Run(s, w) }

// RunTrafficWith is RunTraffic with an explicit execution configuration.
// With TrafficConfig.Stream the run executes as a bounded-memory pipeline
// whose peak memory is independent of Workload.Payments: per-payment
// records are dropped as they settle (unless KeepPayments) and latency
// percentiles come from a constant-size histogram, while every count, rate
// and ledger audit stays byte-identical to a materialised run.
func RunTrafficWith(s Scenario, w Workload, cfg TrafficConfig) (*TrafficResult, error) {
	return traffic.RunWith(s, w, cfg)
}

// NewHistogram returns an empty streaming histogram (see Histogram).
func NewHistogram() *Histogram { return stats.NewHistogram() }

// SweepTraffic runs every (scenario, workload) point across a worker pool
// and returns the outcomes in point order.
func SweepTraffic(points []TrafficPoint, cfg TrafficConfig) []TrafficOutcome {
	return traffic.Sweep(points, cfg)
}

// SeedSweepTraffic builds one sweep point per seed over the same scenario
// shape and workload.
func SeedSweepTraffic(s Scenario, w Workload, seeds []int64) []TrafficPoint {
	return traffic.SeedSweep(s, w, seeds)
}

// GridTraffic builds the cross product of chain lengths and seeds as sweep
// points; mutate, if non-nil, adjusts each scenario before it is added.
func GridTraffic(chains []int, seeds []int64, w Workload, mutate func(Scenario) Scenario) []TrafficPoint {
	return traffic.Grid(chains, seeds, w, mutate)
}

// GenerateScenario derives a random fuzzing scenario from a seed — a pure
// function of the seed, so every finding is reproducible from one number.
// About 70% of seeds satisfy the theorem preconditions (Theorem-1/3
// conforming: every owed property must hold) and the rest violate the
// synchrony envelope (where safety must survive but Theorem-2-shaped
// liveness and termination failures are the expected outcome).
func GenerateScenario(seed int64) ScenarioSpec { return scenariogen.Generate(seed) }

// RunScenarioSpec executes a generated scenario and evaluates the fuzzer's
// theorem-shaped oracle over the run's property report.
func RunScenarioSpec(sp ScenarioSpec) *ScenarioOutcome { return scenariogen.Run(sp) }

// FuzzScenarios runs a fuzzing campaign over consecutive seeds; results are
// deterministic in the options regardless of the worker count.
func FuzzScenarios(opts FuzzOptions) *FuzzStats { return scenariogen.Fuzz(opts) }

// LoadScenarioReplay reads a saved counterexample; its Verify method re-runs
// it and checks it reproduces exactly. cmd/xchain-fuzz writes these files.
func LoadScenarioReplay(path string) (ScenarioReplay, error) { return scenariogen.LoadReplay(path) }

// CheckTimeBounded evaluates a run against Definition 1 in its time-bounded
// variant: termination must happen within bound.
func CheckTimeBounded(res *RunResult, bound Time) Report {
	return check.Evaluate(res, check.Def1TimeBounded(bound))
}

// CheckEventual evaluates a run against Definition 1 with eventual (rather
// than time-bounded) termination.
func CheckEventual(res *RunResult) Report {
	return check.Evaluate(res, check.Def1Eventual())
}

// CheckWeakLiveness evaluates a run against Definition 2; patience is the
// minimum patience every customer must have for the weak-liveness property
// to be owed.
func CheckWeakLiveness(res *RunResult, patience Time) Report {
	return check.Evaluate(res, check.Def2(patience))
}
