package xchainpay

// Benchmark harness: one testing.B benchmark per experiment of DESIGN.md /
// EXPERIMENTS.md. Each benchmark regenerates its experiment's table through
// internal/bench at a configuration scaled down to the benchmark's
// iteration budget; `go test -bench=. -benchmem` therefore re-derives every
// table and figure artefact of the paper. cmd/xchain-bench prints the same
// tables at the full configuration for EXPERIMENTS.md.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchConfig is the per-iteration experiment size used inside benchmarks:
// small enough that one iteration is fast, large enough to exercise every
// code path of the experiment.
func benchConfig() bench.Config { return bench.Config{Runs: 2, MaxChain: 4} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := exp.Run(benchConfig())
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1_TimeBoundedHappyPath regenerates the Figure-1/2 artefact: the
// happy-path run of the time-bounded protocol on growing chains, on both
// engines.
func BenchmarkE1_TimeBoundedHappyPath(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2_Theorem1Properties regenerates the Theorem-1 property sweep
// under synchrony with Byzantine single-fault assignments.
func BenchmarkE2_Theorem1Properties(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3_TerminationBound regenerates the termination-time-vs-bound
// table of Theorem 1.
func BenchmarkE3_TerminationBound(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4_ImpossibilitySearch regenerates the Theorem-2 adversarial
// search under partial synchrony.
func BenchmarkE4_ImpossibilitySearch(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5_WeakLivenessProperties regenerates the Theorem-3 property
// sweep under partial synchrony.
func BenchmarkE5_WeakLivenessProperties(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6_DealsVsPayments regenerates the Section-5 comparison with
// cross-chain deals.
func BenchmarkE6_DealsVsPayments(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7_BaselineComparison regenerates the HTLC-vs-Figure-2 baseline
// comparison.
func BenchmarkE7_BaselineComparison(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8_CostScaling regenerates the protocol cost-scaling table.
func BenchmarkE8_CostScaling(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9_Traffic regenerates the concurrent-traffic table.
func BenchmarkE9_Traffic(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkA1_DriftAblation regenerates the clock-drift fine-tuning ablation.
func BenchmarkA1_DriftAblation(b *testing.B) { runExperiment(b, "A1") }

// BenchmarkA2_NotaryCommittee regenerates the committee-size ablation.
func BenchmarkA2_NotaryCommittee(b *testing.B) { runExperiment(b, "A2") }

// BenchmarkA3_PatienceSensitivity regenerates the patience-sensitivity
// ablation.
func BenchmarkA3_PatienceSensitivity(b *testing.B) { runExperiment(b, "A3") }

// Micro-benchmarks for the protocols themselves, reported alongside the
// experiment benchmarks so the cost of a single end-to-end payment is
// visible per protocol and chain length.

func benchProtocol(b *testing.B, p core.Protocol, n int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.NewScenario(n, int64(i)).Muted()
		for _, id := range s.Topology.Customers() {
			s = s.SetPatience(id, 60*sim.Second)
		}
		res, err := p.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if !res.BobPaid {
			b.Fatalf("%s: Bob not paid", p.Name())
		}
	}
}

// BenchmarkProtocolTimeBounded_n4 measures one end-to-end time-bounded
// payment across four escrows.
func BenchmarkProtocolTimeBounded_n4(b *testing.B) { benchProtocol(b, TimeBounded(), 4) }

// BenchmarkProtocolTimeBoundedANTA_n4 measures the same payment on the
// ANTA (Figure-2 automata) engine.
func BenchmarkProtocolTimeBoundedANTA_n4(b *testing.B) { benchProtocol(b, TimeBoundedANTA(), 4) }

// BenchmarkProtocolWeakLivenessTrusted_n4 measures one weak-liveness payment
// with the trusted manager.
func BenchmarkProtocolWeakLivenessTrusted_n4(b *testing.B) { benchProtocol(b, WeakLiveness(), 4) }

// BenchmarkProtocolWeakLivenessCommittee_n4 measures one weak-liveness
// payment with a 4-notary committee.
func BenchmarkProtocolWeakLivenessCommittee_n4(b *testing.B) {
	benchProtocol(b, WeakLivenessCommittee(4), 4)
}

// BenchmarkProtocolHTLC_n4 measures one hashed-timelock payment.
func BenchmarkProtocolHTLC_n4(b *testing.B) { benchProtocol(b, HTLCBaseline(), 4) }

// Traffic-engine benchmarks: 1,000 concurrent payments multiplexed over an
// 8-hop chain, serial versus worker-pool-plus-sharded-timeline execution.
// Comparing the two ns/op figures measures the parallel runner's speedup
// (bounded by the machine's core count); the results themselves are
// identical by construction (see TestTrafficFacade and
// TestShardedEquivalence in internal/traffic). Every variant reports its
// gomaxprocs and shards so a flat comparison is attributable to the runner,
// and the parallel variant skips outright on a single core rather than
// silently reporting "no speedup" against a baseline it equals by
// definition.

func benchTraffic(b *testing.B, cfg TrafficConfig) {
	b.Helper()
	s := NewScenario(8, 42)
	w := NewWorkload(1000)
	w.Arrival.Rate = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunTrafficWith(s, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Succeeded == 0 {
			b.Fatal("no payment succeeded")
		}
		if res.AuditErr != nil {
			b.Fatalf("ledger audit failed: %v", res.AuditErr)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(cfg.EffectiveShards(s, w)), "shards")
}

// BenchmarkTraffic1kPayments runs the workload with one worker per CPU and
// the auto-resolved shard count. Skips on a single core: there the
// configuration degenerates to the serial baseline and the comparison
// would report a meaningless 1.0x.
func BenchmarkTraffic1kPayments(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("GOMAXPROCS=1: parallel run equals the serial baseline; speedup needs a multi-core runner")
	}
	benchTraffic(b, TrafficConfig{})
}

// BenchmarkTraffic1kPaymentsSerial is the single-worker single-shard
// baseline the parallel figure is compared against.
func BenchmarkTraffic1kPaymentsSerial(b *testing.B) {
	benchTraffic(b, TrafficConfig{Workers: 1, Shards: 1})
}

// benchTrafficStream runs payments through the streaming pipeline
// (aggregates only) and reports the largest live heap sampled *during* the
// run as peak-heap-MB — a transient O(Payments) buffer would show up here
// even if it is garbage by the time the run returns. Peak RSS note: the
// streaming pipeline holds no []PaymentResult and no ledger history, so
// the peak is dominated by the bounded chunk window plus in-flight
// payments — it does not grow with the payment count (compare
// peak-heap-MB across the 100k and 1M variants; per-payment protocol
// simulation dominates ns/op). Run with -benchtime=1x: one million
// payments cost minutes of ed25519 work per iteration.
func benchTrafficStream(b *testing.B, payments int, rate float64, crypto string) {
	b.Helper()
	s := NewScenario(2, 42)
	w := NewWorkload(payments)
	w.Arrival.Rate = rate
	var peak uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	cfg := TrafficConfig{Stream: true, Crypto: crypto}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunTrafficWith(s, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != payments || res.Succeeded == 0 {
			b.Fatalf("streamed %d payments, %d ok", res.Total, res.Succeeded)
		}
		if res.AuditErr != nil {
			b.Fatalf("ledger audit failed: %v", res.AuditErr)
		}
	}
	b.StopTimer()
	close(stop)
	<-sampled
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(cfg.EffectiveShards(s, w)), "shards")
}

// BenchmarkTraffic100kPaymentsStream is the CI-sized streaming run
// (default ed25519 backend).
func BenchmarkTraffic100kPaymentsStream(b *testing.B) { benchTrafficStream(b, 100_000, 20_000, "") }

// BenchmarkTraffic100kPaymentsStreamHMAC is the same run on the hmac
// backend: identical aggregates, with the model-assumed crypto off the hot
// path (compare ns/op against the ed25519 variant).
func BenchmarkTraffic100kPaymentsStreamHMAC(b *testing.B) {
	benchTrafficStream(b, 100_000, 20_000, CryptoHMAC)
}

// BenchmarkTraffic1MPayments pushes one million payments through the
// streaming pipeline — the scale target of the ROADMAP north star. Memory
// stays flat versus the 100k variant; only wall-clock grows (linearly, in
// the per-payment protocol simulations).
func BenchmarkTraffic1MPayments(b *testing.B) { benchTrafficStream(b, 1_000_000, 20_000, "") }

// BenchmarkTraffic1MPaymentsHMAC is the million-payment run with
// authentication on the hmac backend — the "as fast as the hardware
// allows" configuration now that ed25519 no longer dominates the profile.
func BenchmarkTraffic1MPaymentsHMAC(b *testing.B) {
	benchTrafficStream(b, 1_000_000, 20_000, CryptoHMAC)
}

// Kernel micro-benchmarks: the raw cost of the simulation kernel's hot path
// (event scheduling/firing and muted message delivery), independent of any
// protocol. CI runs these with -benchtime=1x as a smoke test; compare runs
// with benchstat (see README "Performance").

// BenchmarkKernelScheduleFire measures one schedule+fire cycle through the
// pooled event heap using the closure-based entry point.
func BenchmarkKernelScheduleFire(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.ScheduleAt(eng.Now()+1, "tick", fn)
		eng.Run(0)
	}
}

// BenchmarkKernelScheduleFireArg measures the allocation-free arg-based
// entry point used by the network's delivery path.
func BenchmarkKernelScheduleFireArg(b *testing.B) {
	eng := sim.NewEngine(1)
	type payload struct{ n int }
	arg := &payload{}
	fn := func(x any) { x.(*payload).n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.ScheduleArgAt(eng.Now()+1, "tick", fn, arg)
		eng.Run(0)
	}
}

// BenchmarkKernelScheduleDepth measures scheduling into a deep queue (heap
// sift cost): 1024 pending events per firing.
func BenchmarkKernelScheduleDepth(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		eng.ScheduleAt(eng.Now()+sim.Time(i)+1, "standing", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ScheduleAt(eng.Now()+1, "tick", fn)
		eng.RunUntil(eng.NextEventTime(), 1)
	}
}

// BenchmarkKernelSendDeliver measures one muted network send+deliver cycle:
// envelope construction, delay draw, pooled delivery scheduling and the
// delivery callback itself.
func BenchmarkKernelSendDeliver(b *testing.B) {
	eng := sim.NewEngine(1)
	tr := trace.New()
	tr.Mute()
	net := netsim.New(eng, netsim.Synchronous{Min: 1, Max: 1}, tr)
	net.Register(&netsim.FuncNode{Id: "a"})
	net.Register(&netsim.FuncNode{Id: "b"})
	// Pre-boxed so the benchmark isolates the network path; a value-typed
	// message adds one 16-byte interface boxing at the call site.
	var msg netsim.Message = netsim.RawMessage{Label: "m"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send("a", "b", msg)
		eng.Run(0)
	}
}

// BenchmarkKernelSendDeliverTraced is the same cycle with a live trace, for
// comparing the cost of recording against the muted fast path.
func BenchmarkKernelSendDeliverTraced(b *testing.B) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.Synchronous{Min: 1, Max: 1}, trace.New())
	net.Register(&netsim.FuncNode{Id: "a"})
	net.Register(&netsim.FuncNode{Id: "b"})
	msg := netsim.RawMessage{Label: "m"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send("a", "b", msg)
		eng.Run(0)
	}
}

// BenchmarkKernelCancel measures the cancel-heavy pattern of timeout-driven
// protocols: schedule a timer, cancel it, let the queue discard it.
func BenchmarkKernelCancel(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := eng.ScheduleAt(eng.Now()+1000, "timeout", fn)
		eng.ScheduleAt(eng.Now()+1, "work", fn)
		tm.Cancel()
		eng.Run(0)
	}
}

// Metrics micro-benchmarks: the per-event cost of live instrumentation and
// the proof that muted (nil-handle) instrumentation costs nothing. These
// bound the overhead every instrumented hot path above pays per counter
// bump or latency observation.

// BenchmarkMetricsCounter measures one live counter increment (a single
// atomic add behind a nil check).
func BenchmarkMetricsCounter(b *testing.B) {
	c := metrics.NewRegistry().Counter("bench_events_total", "bench counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMetricsCounterMuted measures the muted path: a nil *Counter
// increment, the cost an uninstrumented run pays at every metric site.
func BenchmarkMetricsCounterMuted(b *testing.B) {
	var c *metrics.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMetricsHistogram measures one live histogram observation:
// log-bucket index computation plus two atomic adds.
func BenchmarkMetricsHistogram(b *testing.B) {
	h := metrics.NewRegistry().Histogram("bench_latency_ms", "bench histogram")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
}

// BenchmarkMetricsHistogramMuted measures the muted histogram observation.
func BenchmarkMetricsHistogramMuted(b *testing.B) {
	var h *metrics.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3.5)
	}
}

// BenchmarkKernelScheduleFireInstrumented is BenchmarkKernelScheduleFire
// with a live metrics registry attached to the engine, for measuring the
// instrumentation overhead on the kernel's hottest cycle.
func BenchmarkKernelScheduleFireInstrumented(b *testing.B) {
	eng := sim.NewEngine(1)
	eng.SetMetrics(sim.MetricsFrom(metrics.NewRegistry()))
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.ScheduleAt(eng.Now()+1, "tick", fn)
		eng.Run(0)
	}
}
