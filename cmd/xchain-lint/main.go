// Command xchain-lint statically enforces the repository's determinism and
// hot-path contracts: it runs the internal/lint analyzer suite (wallclock,
// maprange, globalrand, hotalloc, nilsafe) over the given packages and exits
// non-zero on any finding. CI gates every change on a clean
// `xchain-lint ./...` sweep.
//
// Usage:
//
//	xchain-lint ./...                 # the whole module (the CI gate)
//	xchain-lint ./internal/traffic    # one package
//	xchain-lint -only maprange ./...  # a subset of analyzers
//	xchain-lint -list                 # describe the suite
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error (a tree that does
// not compile cannot be analyzed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list = fs.Bool("list", false, "list the analyzers and exit")
		only = fs.String("only", "", "comma-separated subset of analyzers to run")
		dir  = fs.String("C", ".", "directory to resolve package patterns from (must be inside the module)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xchain-lint [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Statically enforces the determinism and hot-path contracts.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "xchain-lint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "xchain-lint: %v\n", err)
		return 2
	}
	var targets []*lint.Package
	for _, p := range pkgs {
		if p.Target {
			targets = append(targets, p)
		}
	}
	diags, err := lint.RunAnalyzers(targets, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "xchain-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "xchain-lint: %d finding(s) in %d package(s)\n", len(diags), len(targets))
		return 1
	}
	fmt.Fprintf(stderr, "xchain-lint: %d package(s) clean\n", len(targets))
	return 0
}
