package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListDescribesSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"wallclock", "maprange", "globalrand", "hotalloc", "nilsafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// writeModule lays out a throwaway module named repro so fixture files land
// on deterministic import paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestFindingsExitOne(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the time package from source; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

func Boot() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wallclock: time.Now depends on the wall clock") {
		t.Errorf("stdout missing wallclock finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %s", stderr.String())
	}
}

func TestCleanModuleExitZero(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

func Step(n int) int { return n + 1 }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "clean") {
		t.Errorf("stderr missing clean summary: %s", stderr.String())
	}
}

func TestOnlySubsetSkipsOtherAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the time package from source; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

func Boot() time.Time { return time.Now() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-only", "maprange", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0 (wallclock disabled); stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}
