// Command xchain-traffic generates a concurrent multi-payment workload and
// executes it against one shared Fig. 1 escrow chain, printing success
// rate, throughput, latency percentiles and the liquidity-ledger audit.
//
// Usage:
//
//	xchain-traffic [flags]
//
//	-n 8               number of escrows (chain length)
//	-seed 42           RNG seed (the whole run is deterministic in it)
//	-payments 1000     number of payments
//	-arrival poisson   arrival process: poisson, uniform, burst
//	-rate 500          mean arrival rate (payments per simulated second)
//	-burst 25          burst size (arrival=burst)
//	-burst-gap 2s      gap between bursts (arrival=burst)
//	-amount 100        central payment size
//	-amount-dist fixed amount distribution: fixed, uniform, exponential
//	-spread 0          half-width of the uniform amount distribution
//	-commission 1      per-hop connector commission
//	-mix timelock=1    comma-separated protocol=weight pairs
//	-subpaths          route payments between random customer pairs
//	-hotspot 0         hot sender index (with -subpaths)
//	-hotspot-frac 0    fraction of payments from the hot sender
//	-liquidity 0       per-account escrow endowment (0 = auto-size: never binds)
//	-queue 0s          admission-queue patience for blocked payments
//	-max-queue 0       queued-payment cap (0 = unbounded)
//	-fault c1=silent   comma-separated participant=behaviour pairs
//	-faults 0          fraction of connectors turned Byzantine mid-run by a
//	                   seed-derived fault plan (0 = no plan)
//	-fault-behaviours  comma-separated behaviours the plan draws from
//	                   (default: the adversary catalogue's traffic set)
//	-fault-from 0s     earliest fault onset (simulated time)
//	-fault-stagger 0s  per-connector random onset jitter after -fault-from
//	-fault-outage 0s   per-connector outage window; 0 = faulty forever
//	-manager-outage 0s weak-liveness manager outage window from -fault-from
//	-workers 0         worker-pool size (0 = one per CPU; results identical)
//	-stream            bounded-memory pipeline: peak memory independent of
//	                   -payments (aggregates only; identical counts/rates)
//	-exemplars 10      payments kept as a reservoir sample with -stream
//	-checkpoint ""     write a crash-safe checkpoint to this file (atomic
//	                   write+rename; resume with -resume)
//	-checkpoint-every  write the checkpoint every N admitted payments
//	                   (requires -checkpoint; 0 = only on interruption)
//	-resume ""         resume an interrupted run from this checkpoint file;
//	                   the flags must rebuild the exact scenario/workload the
//	                   snapshot was taken under (enforced by config hash)
//	-sweep-seeds 0     additionally sweep this many seeds in parallel
//	-crypto ed25519    signature backend: ed25519 (default), hmac (identical
//	                   aggregates, orders of magnitude less signing CPU)
//	-crypto-stats      print key-cache / verification-memo counters
//	-max-verify-miss 0 fail if the verify-memo miss rate exceeds this fraction
//	-progress 0s       print a live progress line to stderr at this interval
//	-v                 print one line per payment (the exemplars with -stream)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	xchainpay "repro"
	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain-traffic", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n           = fs.Int("n", 8, "number of escrows in the chain")
		seed        = fs.Int64("seed", 42, "RNG seed")
		payments    = fs.Int("payments", 1000, "number of payments")
		arrival     = fs.String("arrival", "poisson", "arrival process: poisson, uniform, burst")
		rate        = fs.Float64("rate", 500, "mean arrival rate (payments per simulated second)")
		burst       = fs.Int("burst", 25, "burst size for -arrival burst")
		burstGap    = fs.Duration("burst-gap", 2*time.Second, "gap between bursts for -arrival burst")
		amount      = fs.Int64("amount", 100, "central payment size")
		amountDist  = fs.String("amount-dist", "fixed", "amount distribution: fixed, uniform, exponential")
		spread      = fs.Int64("spread", 0, "half-width of the uniform amount distribution")
		commission  = fs.Int64("commission", 1, "per-hop connector commission")
		mix         = fs.String("mix", "timelock=1", "comma-separated protocol=weight pairs")
		subpaths    = fs.Bool("subpaths", false, "route payments between random customer pairs")
		hotspot     = fs.Int("hotspot", 0, "hot sender index (with -subpaths)")
		hotspotFrac = fs.Float64("hotspot-frac", 0, "fraction of payments from the hot sender")
		liquidity   = fs.Int64("liquidity", 0, "per-account escrow endowment (0 = auto-sized)")
		queue       = fs.Duration("queue", 0, "admission-queue patience for blocked payments")
		maxQueue    = fs.Int("max-queue", 0, "queued-payment cap (0 = unbounded)")
		faults      = fs.String("fault", "", "comma-separated participant=behaviour pairs, e.g. c1=silent")
		faultFrac   = fs.Float64("faults", 0, "fraction of connectors turned Byzantine mid-run (0 = no fault plan)")
		faultBehav  = fs.String("fault-behaviours", "", "comma-separated behaviours the fault plan draws from (empty = default set)")
		faultFrom   = fs.Duration("fault-from", 0, "earliest fault onset (simulated time)")
		faultStag   = fs.Duration("fault-stagger", 0, "per-connector random onset jitter after -fault-from")
		faultOutage = fs.Duration("fault-outage", 0, "per-connector outage window; 0 = faulty for the rest of the run")
		mgrOutage   = fs.Duration("manager-outage", 0, "weak-liveness manager outage window starting at -fault-from")
		workers     = fs.Int("workers", 0, "worker-pool size (0 = one per CPU)")
		shards      = fs.Int("shards", 0, "admission-timeline shards (0 = one per CPU, 1 = single timeline; results are identical at any count)")
		stream      = fs.Bool("stream", false, "bounded-memory streaming pipeline (aggregates only)")
		exemplars   = fs.Int("exemplars", 10, "payments kept as a reservoir sample with -stream")
		ckptPath    = fs.String("checkpoint", "", "write a crash-safe checkpoint to this file (resume with -resume)")
		ckptEvery   = fs.Int("checkpoint-every", 0, "write the checkpoint every N admitted payments (requires -checkpoint)")
		resumePath  = fs.String("resume", "", "resume an interrupted run from this checkpoint file")
		sweepSeeds  = fs.Int("sweep-seeds", 0, "additionally sweep this many seeds in parallel")
		crypto      = fs.String("crypto", "", "signature backend: ed25519 (default), hmac")
		cryptoStats = fs.Bool("crypto-stats", false, "print key-cache and verification-memo counters after the run")
		maxMiss     = fs.Float64("max-verify-miss", 0, "fail if the verification-memo miss rate exceeds this fraction (0 = no gate)")
		progress    = fs.Duration("progress", 0, "print a live progress line to stderr at this wall-clock interval (0 = off)")
		verbose     = fs.Bool("v", false, "print one line per payment (the exemplars with -stream)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	s := xchainpay.NewScenario(*n, *seed)
	if *faults != "" {
		for _, pair := range strings.Split(*faults, ",") {
			parts := strings.SplitN(pair, "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(stderr, "xchain-traffic: malformed -fault entry %q (want participant=behaviour)\n", pair)
				return 2
			}
			s = s.SetFault(parts[0], adversary.Spec(adversary.Behaviour(parts[1]), s.Timing))
		}
	}

	w := xchainpay.NewWorkload(*payments)
	// The kind names are the flag strings; unknown values are rejected by
	// Workload.Validate rather than silently coerced.
	w.Arrival.Kind = xchainpay.ArrivalKind(*arrival)
	w.Arrival.Rate = *rate
	w.Arrival.BurstSize = *burst
	w.Arrival.BurstGap = durToSim(*burstGap)
	w.Amounts.Kind = xchainpay.AmountKind(*amountDist)
	w.Amounts.Base = *amount
	w.Amounts.Spread = *spread
	w.Commission = *commission
	w.RandomSubPaths = *subpaths
	w.HotspotSender = *hotspot
	w.HotspotFraction = *hotspotFrac
	w.Liquidity = *liquidity
	w.QueuePatience = durToSim(*queue)
	w.MaxQueue = *maxQueue
	if *faultFrac > 0 || *mgrOutage > 0 {
		w.Faults = xchainpay.TrafficFaultPlan{
			Fraction:      *faultFrac,
			From:          durToSim(*faultFrom),
			Stagger:       durToSim(*faultStag),
			Outage:        durToSim(*faultOutage),
			ManagerOutage: durToSim(*mgrOutage),
		}
		if *faultBehav != "" {
			w.Faults.Behaviours = strings.Split(*faultBehav, ",")
		}
	}
	if *mix != "" {
		w.Mix = nil
		for _, pair := range strings.Split(*mix, ",") {
			parts := strings.SplitN(pair, "=", 2)
			weight := 1.0
			if len(parts) == 2 {
				var err error
				weight, err = strconv.ParseFloat(parts[1], 64)
				if err != nil {
					fmt.Fprintf(stderr, "xchain-traffic: malformed -mix entry %q: %v\n", pair, err)
					return 2
				}
			}
			w.Mix = append(w.Mix, xchainpay.ProtocolShare{Name: parts[0], Weight: weight})
		}
	}

	cfg := xchainpay.TrafficConfig{Workers: *workers, Shards: *shards, Stream: *stream, Exemplars: *exemplars, Crypto: *crypto}
	if *ckptPath != "" || *ckptEvery > 0 || *resumePath != "" {
		if *sweepSeeds > 1 {
			fmt.Fprintf(stderr, "xchain-traffic: -checkpoint/-resume cannot be combined with -sweep-seeds\n")
			return 2
		}
		cfg.CheckpointPath = *ckptPath
		cfg.CheckpointEvery = *ckptEvery
		if *resumePath != "" {
			// Resuming with periodic checkpoints but no explicit -checkpoint
			// keeps writing to the file being resumed from.
			if cfg.CheckpointPath == "" && cfg.CheckpointEvery > 0 {
				cfg.CheckpointPath = *resumePath
			}
			sn, err := xchainpay.LoadTrafficSnapshot(*resumePath)
			if err != nil {
				fmt.Fprintf(stderr, "xchain-traffic: cannot resume from %s: %v\n", *resumePath, err)
				return 1
			}
			cfg.Resume = sn
		}
	}
	var stopProgress func()
	if *progress > 0 {
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		stopProgress = startProgress(stderr, reg, *progress)
		// Error paths return without reaching cryptoGate; make sure the
		// progress goroutine never outlives the run (stop is idempotent).
		defer stopProgress()
	}
	// cryptoGate prints the process-wide cache counters under their
	// canonical metric names (the same the /metrics exposition uses, see
	// internal/sig RegisterMetrics) and applies the verification-memo
	// miss-rate gate; it covers single runs and sweeps alike (the counters
	// aggregate every run of the process).
	cryptoGate := func() int {
		if stopProgress != nil {
			stopProgress()
		}
		if !*cryptoStats && *maxMiss <= 0 {
			return 0
		}
		st := sig.GlobalStats()
		fmt.Fprintf(stdout, "crypto: %s=%d %s=%d %s=%d %s=%d %s=%d (verify miss rate %.3f)\n",
			sig.MetricKeygenCacheHits, st.KeygenHits,
			sig.MetricKeygenCacheMisses, st.KeygenMisses,
			sig.MetricVerifyMemoHits, st.MemoHits,
			sig.MetricVerifyMemoMisses, st.MemoMisses,
			sig.MetricVerifyMemoEvictions, st.MemoEvictions,
			st.VerifyMissRate())
		if *maxMiss > 0 && st.VerifyMissRate() > *maxMiss {
			fmt.Fprintf(stderr, "xchain-traffic: verification-memo miss rate %.3f exceeds gate %.3f\n", st.VerifyMissRate(), *maxMiss)
			return 1
		}
		return 0
	}
	if *sweepSeeds > 1 {
		seeds := make([]int64, *sweepSeeds)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		points := xchainpay.SeedSweepTraffic(s, w, seeds)
		for _, o := range xchainpay.SweepTraffic(points, cfg) {
			if o.Err != nil {
				fmt.Fprintf(stderr, "xchain-traffic: %s: %v\n", o.Point.Label, o.Err)
				return 1
			}
			fmt.Fprintf(stdout, "=== %s ===\n%s", o.Point.Label, o.Result)
			if bad := gate(stderr, o.Result); bad != 0 {
				return bad
			}
		}
		return cryptoGate()
	}

	res, err := xchainpay.RunTrafficWith(s, w, cfg)
	if err != nil {
		var mm *xchainpay.TrafficConfigMismatchError
		if errors.As(err, &mm) {
			fmt.Fprintf(stderr, "xchain-traffic: %v\n", err)
			fmt.Fprintf(stderr, "xchain-traffic: the -resume snapshot was taken under a different scenario/workload than the current flags rebuild; rerun with the original flags. The snapshot's embedded config:\n%s\n", mm.EmbeddedConfig())
			return 1
		}
		fmt.Fprintf(stderr, "xchain-traffic: %v\n", err)
		return 1
	}
	if *verbose {
		fmt.Fprint(stdout, res.PaymentTable())
	}
	fmt.Fprint(stdout, res.String())
	if bad := gate(stderr, res); bad != 0 {
		return bad
	}
	return cryptoGate()
}

// gate enforces the aggregate oracles on a finished run: the ledger audit
// and refund-cascade conservation, plus the Theorem-1/3 safety oracle (zero
// owed safety-property failures at any load and any attacker fraction).
func gate(stderr io.Writer, res *xchainpay.TrafficResult) int {
	if res.AuditErr != nil || res.CascadeErr != nil || res.PendingLocks != 0 {
		fmt.Fprintf(stderr, "xchain-traffic: liquidity ledgers inconsistent after the run\n")
		return 1
	}
	if res.SafetyViolations != 0 {
		fmt.Fprintf(stderr, "xchain-traffic: %d safety violations for honest parties (the theorems forbid any)\n", res.SafetyViolations)
		return 1
	}
	return 0
}

func durToSim(d time.Duration) sim.Time { return sim.Time(d / time.Microsecond) }

// startProgress launches a goroutine printing one progress line to w
// immediately and then every interval, reading the run's live registry and
// the Go heap. The returned stop function is idempotent: it prints a final
// line and waits for the goroutine to exit, so no write races the caller's
// own output.
func startProgress(w io.Writer, reg *metrics.Registry, every time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		var lastSettled uint64
		lastAt := time.Now()
		line := func() {
			settled := reg.Counter(traffic.MetricPaymentsSettled, "").Value()
			now := time.Now()
			rate := 0.0
			if dt := now.Sub(lastAt).Seconds(); dt > 0 {
				rate = float64(settled-lastSettled) / dt
			}
			lastSettled, lastAt = settled, now
			lat := reg.Histogram(traffic.MetricLatencyMs, "")
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(w, "progress: generated=%d simulated=%d settled=%d (%.0f/s wall) queue=%.0f in-flight=%.0f p50=%.3fms p99=%.3fms heap=%.1fMB\n",
				reg.Counter(traffic.MetricPaymentsGenerated, "").Value(),
				reg.Counter(traffic.MetricPaymentsSimulated, "").Value(),
				settled, rate,
				reg.Gauge(traffic.MetricQueueDepth, "").Value(),
				reg.Gauge(traffic.MetricInFlight, "").Value(),
				lat.Quantile(0.5), lat.Quantile(0.99),
				float64(ms.HeapAlloc)/(1<<20))
		}
		line()
		for {
			select {
			case <-stop:
				line()
				return
			case <-t.C:
				line()
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(stop)
		<-done
	}
}
