package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallWorkload(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "3", "-payments", "40", "-rate", "200", "-mix", "timelock=0.5,htlc=0.5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"traffic: 40 payments over 3 escrows", "audit=ok", "pending-locks=0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunStarvedQueueVerbose(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-n", "3", "-payments", "30", "-arrival", "burst", "-burst", "15",
		"-liquidity", "450", "-queue", "3s", "-v",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "dropped=") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p00000-c0-c3") {
		t.Errorf("-v payment table missing:\n%s", out.String())
	}
}

// TestRunStreaming checks the bounded-memory pipeline end to end: the
// summary carries the full payment count, aggregate lines and a clean
// audit, and -v renders the exemplar reservoir instead of a full table.
func TestRunStreaming(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-payments", "500", "-rate", "2000", "-stream", "-exemplars", "4", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"traffic: 500 payments over 2 escrows", "audit=ok", "pending-locks=0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if got := strings.Count(out.String(), "arrive="); got != 4 {
		t.Errorf("-v with -stream printed %d exemplar rows, want 4:\n%s", got, out.String())
	}
	// Aggregates match the materialised run exactly (percentiles excepted,
	// which the histogram estimates; compare the outcome line only).
	var matOut, matErr strings.Builder
	if code := run([]string{"-n", "2", "-payments", "500", "-rate", "2000"}, &matOut, &matErr); code != 0 {
		t.Fatalf("materialised run failed: %s", matErr.String())
	}
	outcome := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "outcome") {
				return line
			}
		}
		return ""
	}
	if a, b := outcome(out.String()), outcome(matOut.String()); a == "" || a != b {
		t.Errorf("streaming outcome line differs:\n%s\n%s", a, b)
	}
}

func TestRunSeedSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-payments", "20", "-sweep-seeds", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if got := strings.Count(out.String(), "=== n=2 seed="); got != 3 {
		t.Errorf("expected 3 sweep cells, saw %d:\n%s", got, out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag accepted (exit %d)", code)
	}
	if code := run([]string{"-mix", "timelock=abc"}, &out, &errOut); code != 2 {
		t.Errorf("malformed mix accepted (exit %d)", code)
	}
	if code := run([]string{"-fault", "nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("malformed fault accepted (exit %d)", code)
	}
	if code := run([]string{"-mix", "no-such-protocol=1"}, &out, &errOut); code != 1 {
		t.Errorf("unknown protocol in mix should fail the run (exit %d)", code)
	}
	if code := run([]string{"-arrival", "brust"}, &out, &errOut); code != 1 {
		t.Errorf("misspelled arrival kind should fail the run, not be coerced (exit %d)", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h should print usage and exit 0 (exit %d)", code)
	}
}

// -progress prints at least one live progress line (the first fires
// immediately, a final one at stop) with the run's counters, without
// changing the summary or the exit code.
func TestRunProgress(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-n", "3", "-payments", "60", "-rate", "300", "-progress", "1h",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "traffic: 60 payments over 3 escrows") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	progress := errOut.String()
	if strings.Count(progress, "progress: ") < 2 {
		t.Fatalf("want an immediate and a final progress line, got:\n%s", progress)
	}
	// The final line reflects the drained run.
	for _, want := range []string{"generated=60", "settled=", "p50=", "heap="} {
		if !strings.Contains(progress, want) {
			t.Errorf("progress output missing %q:\n%s", want, progress)
		}
	}
}

// A run with -checkpoint-every leaves a resumable snapshot behind, and
// resuming it with the same flags reproduces the uninterrupted summary
// byte for byte. Resuming under different flags is an actionable error,
// not a panic, and prints the snapshot's embedded config.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	flags := []string{"-n", "3", "-payments", "400", "-rate", "1500", "-stream", "-crypto", "hmac", "-mix", "timelock=0.5,htlc=0.5"}

	var control, errOut strings.Builder
	if code := run(flags, &control, &errOut); code != 0 {
		t.Fatalf("control run failed (exit %d): %s", code, errOut.String())
	}

	// The periodic snapshot survives the completed run: the final write
	// happens at the last multiple of -checkpoint-every before the end.
	var out1 strings.Builder
	errOut.Reset()
	if code := run(append([]string{"-checkpoint", ckpt, "-checkpoint-every", "150"}, flags...), &out1, &errOut); code != 0 {
		t.Fatalf("checkpointed run failed (exit %d): %s", code, errOut.String())
	}
	if out1.String() != control.String() {
		t.Errorf("checkpoint cadence changed the summary:\n%s\n--\n%s", out1.String(), control.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint left behind: %v", err)
	}

	var resumed strings.Builder
	errOut.Reset()
	if code := run(append([]string{"-resume", ckpt}, flags...), &resumed, &errOut); code != 0 {
		t.Fatalf("resume failed (exit %d): %s", code, errOut.String())
	}
	if resumed.String() != control.String() {
		t.Errorf("resumed summary differs from control:\n%s\n--\n%s", resumed.String(), control.String())
	}

	// Config drift: same snapshot, different seed.
	var out2, mismatch strings.Builder
	if code := run(append([]string{"-resume", ckpt, "-seed", "43"}, flags...), &out2, &mismatch); code != 1 {
		t.Fatalf("mismatched resume should exit 1, got %d: %s", code, mismatch.String())
	}
	for _, want := range []string{"different scenario/workload", `"seed": 42`} {
		if !strings.Contains(mismatch.String(), want) {
			t.Errorf("mismatch diagnostics missing %q:\n%s", want, mismatch.String())
		}
	}

	// Checkpointing is a single-run feature.
	var out3, comboErr strings.Builder
	if code := run(append([]string{"-checkpoint", ckpt, "-sweep-seeds", "3"}, flags...), &out3, &comboErr); code != 2 {
		t.Errorf("-checkpoint with -sweep-seeds should exit 2, got %d", code)
	}

	// A missing snapshot is a load error, not a fresh start.
	var out4, loadErr strings.Builder
	if code := run(append([]string{"-resume", filepath.Join(t.TempDir(), "nope.ckpt")}, flags...), &out4, &loadErr); code != 1 {
		t.Errorf("missing snapshot should exit 1, got %d", code)
	}
	if !strings.Contains(loadErr.String(), "cannot resume") {
		t.Errorf("load error not actionable:\n%s", loadErr.String())
	}
}

// -crypto-stats prints the canonical sig metric names, so logs and /metrics
// scrapes agree on what the counters are called.
func TestRunCryptoStatsNames(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-payments", "20", "-crypto", "hmac", "-crypto-stats"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{
		"xchain_sig_keygen_cache_hits_total=",
		"xchain_sig_verify_memo_misses_total=",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("crypto-stats output missing %q:\n%s", want, out.String())
		}
	}
}
