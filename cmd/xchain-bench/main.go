// Command xchain-bench runs the experiment suite (E1..E9, A1..A3) and prints
// the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	xchain-bench              # run every experiment at the full configuration
//	xchain-bench -quick       # smaller sweep (seconds instead of minutes)
//	xchain-bench -run E4,E9   # run a subset by ID
//	xchain-bench -runs 10 -maxchain 6
//	xchain-bench -quick -json BENCH_baseline.json   # machine-readable snapshot
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

// jsonReport is the machine-readable snapshot written by -json. Committed
// snapshots (BENCH_baseline.json) track the perf trajectory across PRs:
// table contents are deterministic in the configuration, while Seconds is
// wall-clock and only comparable on similar hardware.
type jsonReport struct {
	Config      jsonConfig       `json:"config"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonConfig struct {
	Runs     int  `json:"runs"`
	MaxChain int  `json:"max_chain"`
	Quick    bool `json:"quick"`
}

type jsonExperiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Seconds float64    `json:"seconds"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "use the quick (test-sized) configuration")
		runs     = fs.Int("runs", 0, "override the number of seeds per experiment cell")
		maxChain = fs.Int("maxchain", 0, "override the largest chain length swept")
		workers  = fs.Int("workers", 0, "override the worker-pool size (default GOMAXPROCS)")
		only     = fs.String("run", "", "comma-separated experiment IDs to run (default: all)")
		jsonOut  = fs.String("json", "", "also write the tables as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *maxChain > 0 {
		cfg.MaxChain = *maxChain
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	experiments := bench.All()
	if *only != "" {
		var selected []bench.Experiment
		for _, id := range strings.Split(*only, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "xchain-bench: unknown experiment %q\n", id)
				return 2
			}
			selected = append(selected, e)
		}
		experiments = selected
	}

	fmt.Fprintf(stdout, "configuration: runs=%d maxchain=%d\n\n", cfg.Runs, cfg.MaxChain)
	report := jsonReport{Config: jsonConfig{Runs: cfg.Runs, MaxChain: cfg.MaxChain, Quick: *quick}}
	for _, e := range experiments {
		start := time.Now()
		tab := e.Run(cfg)
		elapsed := time.Since(start)
		fmt.Fprint(stdout, tab.String())
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: tab.ID, Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows,
			Notes: tab.Notes, Seconds: elapsed.Seconds(),
		})
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "xchain-bench: marshal json: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "xchain-bench: write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
	}
	return 0
}
