// Command xchain-bench runs the experiment suite (E1..E8, A1..A3) and prints
// the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	xchain-bench              # run every experiment at the full configuration
//	xchain-bench -quick       # smaller sweep (seconds instead of minutes)
//	xchain-bench -run E4,E7   # run a subset by ID
//	xchain-bench -runs 10 -maxchain 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use the quick (test-sized) configuration")
		runs     = flag.Int("runs", 0, "override the number of seeds per experiment cell")
		maxChain = flag.Int("maxchain", 0, "override the largest chain length swept")
		workers  = flag.Int("workers", 0, "override the worker-pool size (default GOMAXPROCS)")
		only     = flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	)
	flag.Parse()

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *maxChain > 0 {
		cfg.MaxChain = *maxChain
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	experiments := bench.All()
	if *only != "" {
		var selected []bench.Experiment
		for _, id := range strings.Split(*only, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "xchain-bench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
		experiments = selected
	}

	fmt.Printf("configuration: runs=%d maxchain=%d\n\n", cfg.Runs, cfg.MaxChain)
	for _, e := range experiments {
		start := time.Now()
		tab := e.Run(cfg)
		fmt.Print(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
