package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "E1", "-runs", "1", "-maxchain", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"configuration: runs=1 maxchain=2", "E1 —", "(E1 completed in"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTrafficExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "E9", "-quick", "-runs", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E9 — concurrent multi-payment traffic") {
		t.Errorf("E9 table missing:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "E99"}, &out, &errOut); code != 2 {
		t.Errorf("unknown experiment accepted (exit %d)", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag accepted (exit %d)", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h should print usage and exit 0 (exit %d)", code)
	}
}
