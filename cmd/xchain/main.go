// Command xchain runs a single cross-chain payment scenario and prints its
// trace, the per-customer outcomes, and the property verdicts.
//
// Usage:
//
//	xchain [flags]
//
//	-n 3              number of escrows (chain length)
//	-seed 1           RNG seed (runs are deterministic in it)
//	-protocol timelock  one of: timelock, timelock-anta, timelock-naive,
//	                    weaklive, weaklive-committee, htlc
//	-committee 4      committee size for weaklive-committee
//	-network sync     one of: sync, partial
//	-gst 500ms        global stabilisation time for -network partial
//	-patience 30s     per-customer patience (weak-liveness protocols)
//	-fault c1=silent  comma-separated participant=behaviour pairs
//	-trace            print the full event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	xchainpay "repro"
	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/sim"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of escrows in the chain")
		seed      = flag.Int64("seed", 1, "RNG seed")
		protoName = flag.String("protocol", "timelock", "protocol: timelock, timelock-anta, timelock-naive, weaklive, weaklive-committee, htlc")
		committee = flag.Int("committee", 4, "committee size for weaklive-committee")
		network   = flag.String("network", "sync", "network model: sync or partial")
		gst       = flag.Duration("gst", 500*time.Millisecond, "global stabilisation time for -network partial")
		patience  = flag.Duration("patience", 30*time.Second, "customer patience (weak-liveness protocols)")
		faults    = flag.String("fault", "", "comma-separated participant=behaviour pairs, e.g. c1=silent,e0=theft")
		showTrace = flag.Bool("trace", false, "print the full event trace")
	)
	flag.Parse()

	s := xchainpay.NewScenario(*n, *seed)
	timing := s.Timing
	switch *network {
	case "sync":
		// Default network already synchronous.
	case "partial":
		s = s.WithNetwork(xchainpay.PartiallySynchronous(durToSim(*gst), timing.MaxMsgDelay, 4*durToSim(*gst)))
	default:
		fatalf("unknown network model %q", *network)
	}
	for _, id := range s.Topology.Customers() {
		s = s.SetPatience(id, durToSim(*patience))
	}
	if *faults != "" {
		for _, pair := range strings.Split(*faults, ",") {
			parts := strings.SplitN(pair, "=", 2)
			if len(parts) != 2 {
				fatalf("malformed -fault entry %q (want participant=behaviour)", pair)
			}
			s = s.SetFault(parts[0], adversary.Spec(adversary.Behaviour(parts[1]), timing))
		}
	}

	var (
		protocol xchainpay.Protocol
		opts     check.Options
	)
	switch *protoName {
	case "timelock":
		p := xchainpay.TimeBounded()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "timelock-anta":
		p := xchainpay.TimeBoundedANTA()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "timelock-naive":
		p := xchainpay.TimeBoundedNaive()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "weaklive":
		protocol, opts = xchainpay.WeakLiveness(), check.Def2(durToSim(*patience))
	case "weaklive-committee":
		protocol, opts = xchainpay.WeakLivenessCommittee(*committee), check.Def2(durToSim(*patience))
	case "htlc":
		protocol, opts = xchainpay.HTLCBaseline(), check.Def1Eventual()
	default:
		fatalf("unknown protocol %q", *protoName)
	}

	res, err := protocol.Run(s)
	if err != nil {
		fatalf("run failed: %v", err)
	}

	if *showTrace {
		fmt.Println("=== trace ===")
		fmt.Print(res.Trace.String())
	}
	fmt.Printf("=== %s: payment %s over %d escrows (seed %d) ===\n",
		protocol.Name(), s.Spec.PaymentID, s.Topology.N, s.Seed)
	fmt.Printf("Bob paid: %v   all terminated: %v   duration: %v   messages: %d\n",
		res.BobPaid, res.AllTerminated, res.Duration, res.NetStats.Sent)
	fmt.Println("--- customers ---")
	for _, id := range s.Topology.Customers() {
		out := res.Outcome(id)
		fmt.Printf("%-4s %-10s net=%+6d terminated=%-5v chi=%-5v commit=%-5v abort=%-5v\n",
			id, out.Role, out.NetWealthChange(), out.Terminated, out.HoldsChi, out.HoldsCommitCert, out.HoldsAbortCert)
	}
	fmt.Println("--- properties ---")
	report := check.Evaluate(res, opts)
	fmt.Print(report)
	if !report.AllOK() {
		os.Exit(1)
	}
}

func durToSim(d time.Duration) sim.Time { return sim.Time(d / time.Microsecond) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xchain: "+format+"\n", args...)
	os.Exit(2)
}
