// Command xchain runs a single cross-chain payment scenario and prints its
// trace, the per-customer outcomes, and the property verdicts.
//
// Usage:
//
//	xchain [flags]
//
//	-n 3              number of escrows (chain length)
//	-seed 1           RNG seed (runs are deterministic in it)
//	-protocol timelock  one of: timelock, timelock-anta, timelock-naive,
//	                    weaklive, weaklive-committee, htlc
//	-committee 4      committee size for weaklive-committee
//	-network sync     one of: sync, partial
//	-gst 500ms        global stabilisation time for -network partial
//	-patience 30s     per-customer patience (weak-liveness protocols)
//	-fault c1=silent  comma-separated participant=behaviour pairs
//	-trace            print the full event trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	xchainpay "repro"
	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n         = fs.Int("n", 3, "number of escrows in the chain")
		seed      = fs.Int64("seed", 1, "RNG seed")
		protoName = fs.String("protocol", "timelock", "protocol: timelock, timelock-anta, timelock-naive, weaklive, weaklive-committee, htlc")
		committee = fs.Int("committee", 4, "committee size for weaklive-committee")
		network   = fs.String("network", "sync", "network model: sync or partial")
		gst       = fs.Duration("gst", 500*time.Millisecond, "global stabilisation time for -network partial")
		patience  = fs.Duration("patience", 30*time.Second, "customer patience (weak-liveness protocols)")
		faults    = fs.String("fault", "", "comma-separated participant=behaviour pairs, e.g. c1=silent,e0=theft")
		showTrace = fs.Bool("trace", false, "print the full event trace")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fatalf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "xchain: "+format+"\n", args...)
		return 2
	}

	s := xchainpay.NewScenario(*n, *seed)
	timing := s.Timing
	switch *network {
	case "sync":
		// Default network already synchronous.
	case "partial":
		s = s.WithNetwork(xchainpay.PartiallySynchronous(durToSim(*gst), timing.MaxMsgDelay, 4*durToSim(*gst)))
	default:
		return fatalf("unknown network model %q", *network)
	}
	for _, id := range s.Topology.Customers() {
		s = s.SetPatience(id, durToSim(*patience))
	}
	if *faults != "" {
		for _, pair := range strings.Split(*faults, ",") {
			parts := strings.SplitN(pair, "=", 2)
			if len(parts) != 2 {
				return fatalf("malformed -fault entry %q (want participant=behaviour)", pair)
			}
			s = s.SetFault(parts[0], adversary.Spec(adversary.Behaviour(parts[1]), timing))
		}
	}

	var (
		protocol xchainpay.Protocol
		opts     check.Options
	)
	switch *protoName {
	case "timelock":
		p := xchainpay.TimeBounded()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "timelock-anta":
		p := xchainpay.TimeBoundedANTA()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "timelock-naive":
		p := xchainpay.TimeBoundedNaive()
		protocol, opts = p, check.Def1TimeBounded(p.ParamsFor(s).Bound)
	case "weaklive":
		protocol, opts = xchainpay.WeakLiveness(), check.Def2(durToSim(*patience))
	case "weaklive-committee":
		protocol, opts = xchainpay.WeakLivenessCommittee(*committee), check.Def2(durToSim(*patience))
	case "htlc":
		protocol, opts = xchainpay.HTLCBaseline(), check.Def1Eventual()
	default:
		return fatalf("unknown protocol %q", *protoName)
	}

	res, err := protocol.Run(s)
	if err != nil {
		fmt.Fprintf(stderr, "xchain: run failed: %v\n", err)
		return 1
	}

	if *showTrace {
		fmt.Fprintln(stdout, "=== trace ===")
		fmt.Fprint(stdout, res.Trace.String())
	}
	fmt.Fprintf(stdout, "=== %s: payment %s over %d escrows (seed %d) ===\n",
		protocol.Name(), s.Spec.PaymentID, s.Topology.N, s.Seed)
	fmt.Fprintf(stdout, "Bob paid: %v   all terminated: %v   duration: %v   messages: %d\n",
		res.BobPaid, res.AllTerminated, res.Duration, res.NetStats.Sent)
	fmt.Fprintln(stdout, "--- customers ---")
	for _, id := range s.Topology.Customers() {
		out := res.Outcome(id)
		fmt.Fprintf(stdout, "%-4s %-10s net=%+6d terminated=%-5v chi=%-5v commit=%-5v abort=%-5v\n",
			id, out.Role, out.NetWealthChange(), out.Terminated, out.HoldsChi, out.HoldsCommitCert, out.HoldsAbortCert)
	}
	fmt.Fprintln(stdout, "--- properties ---")
	report := check.Evaluate(res, opts)
	fmt.Fprint(stdout, report)
	if !report.AllOK() {
		return 1
	}
	return 0
}

func durToSim(d time.Duration) sim.Time { return sim.Time(d / time.Microsecond) }
