package main

import (
	"strings"
	"testing"
)

func TestRunHappyPath(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-seed", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"Bob paid: true", "--- properties ---", "PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunProtocolsAndFaults(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-protocol", "weaklive", "-fault", "c1=silent"}, &out, &errOut)
	// A silent connector must not break safety; the run may still report
	// liveness as not owed, so only exit codes 0/1 are acceptable.
	if code == 2 {
		t.Fatalf("flag handling failed: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "--- properties ---") {
		t.Errorf("property report missing:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown protocol accepted (exit %d)", code)
	}
	if code := run([]string{"-network", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown network accepted (exit %d)", code)
	}
	if code := run([]string{"-fault", "nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("malformed fault accepted (exit %d)", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag accepted (exit %d)", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h should print usage and exit 0 (exit %d)", code)
	}
}
