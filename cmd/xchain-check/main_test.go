package main

import (
	"strings"
	"testing"
)

func TestRunReproducesClaims(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-n", "2", "-seeds", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	for _, want := range []string{
		"clean: no property violated",
		"reproduced: every candidate protocol fails Definition 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag accepted (exit %d)", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h should print usage and exit 0 (exit %d)", code)
	}
}
