// Command xchain-check runs the safety audits and the Theorem-2
// impossibility exploration: it sweeps Byzantine fault assignments against
// the time-bounded protocol under synchrony (expecting no violations), and
// searches adversarial partial-synchrony schedules against the
// timeout-protocol family (expecting every candidate to break somewhere).
//
// The command exits non-zero if either half fails to reproduce the paper's
// claim, which makes it usable as a CI gate for the reproduction.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/timelock"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain-check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n     = fs.Int("n", 3, "chain length for the safety audit")
		seeds = fs.Int("seeds", 5, "seeds per fault assignment")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	failed := false

	fmt.Fprintf(stdout, "=== safety audit: Definition 1 under synchrony, every single- and pair-fault assignment (n=%d) ===\n", *n)
	p := timelock.New()
	summary := check.NewSummary()
	assignments := adversary.SingleFaultAssignments(core.NewTopology(*n))
	assignments = append(assignments, adversary.PairFaultAssignments(core.NewTopology(*n))...)
	for _, a := range assignments {
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			s := a.Apply(core.NewScenario(*n, seed)).Muted()
			res, err := p.Run(s)
			if err != nil {
				fmt.Fprintf(stderr, "run error (%s): %v\n", a.Describe(), err)
				failed = true
				continue
			}
			summary.Add(check.Evaluate(res, check.Def1TimeBounded(p.ParamsFor(s).Bound)))
		}
	}
	fmt.Fprint(stdout, summary.String())
	if summary.Clean() {
		fmt.Fprintf(stdout, "clean: no property violated across %d runs\n\n", summary.Total)
	} else {
		fmt.Fprintf(stdout, "VIOLATIONS: %v (examples: %v)\n\n", summary.ViolatedProperties(), summary.FailureExamples)
		failed = true
	}

	fmt.Fprintln(stdout, "=== impossibility exploration: Theorem 2 under partial synchrony ===")
	opts := explore.DefaultOptions()
	opts.N = *n
	findings := explore.SearchImpossibility(opts)
	for _, f := range findings {
		props := make([]string, 0, len(f.Violated))
		for _, pr := range f.Violated {
			props = append(props, string(pr))
		}
		label := strings.Join(props, ",")
		if label == "" {
			label = "(survived)"
		}
		fmt.Fprintf(stdout, "%-20s vs %-20s -> %s\n", f.Candidate, f.Attack, label)
	}
	if err := explore.VerifyTheorem2(findings); err != nil {
		fmt.Fprintf(stdout, "THEOREM 2 NOT REPRODUCED: %v\n", err)
		failed = true
	} else {
		fmt.Fprintln(stdout, "reproduced: every candidate protocol fails Definition 1 under some partial-synchrony attack")
	}
	control, err := explore.ControlUnderSynchrony(opts)
	if err != nil {
		fmt.Fprintf(stderr, "control error: %v\n", err)
		failed = true
	} else {
		// Report in sorted candidate order: map iteration would print
		// failures in a different order on every run.
		cands := make([]string, 0, len(control))
		for cand := range control {
			cands = append(cands, cand)
		}
		sort.Strings(cands)
		for _, cand := range cands {
			if !control[cand] {
				fmt.Fprintf(stdout, "control FAILED: %s violates Definition 1 even under synchrony\n", cand)
				failed = true
			}
		}
	}

	if failed {
		return 1
	}
	return 0
}
