package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/traffic"
)

// post starts a run and returns its id.
func post(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, raw)
	}
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad POST response %q: %v", raw, err)
	}
	if v.ID == "" || v.Status != "running" {
		t.Fatalf("unexpected POST response: %s", raw)
	}
	return v.ID
}

// get fetches a JSON document.
func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls GET /runs/{id} until the run leaves "running".
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v map[string]any
		if code := get(t, ts, "/runs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /runs/%s = %d", id, code)
		}
		if v["status"] != "running" {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", id)
	return nil
}

// TestServeEndToEnd drives the full surface: healthz, two runs (one
// streaming), per-run progress, the runs listing, and a /metrics scrape
// covering the sim, net, traffic, ledger and sig families with run labels.
func TestServeEndToEnd(t *testing.T) {
	// Explicit maxRuns: the default is NumCPU, which on a single-core
	// machine would 429 the second concurrent run.
	ts := httptest.NewServer(newServerWith(serverOptions{maxRuns: 4}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	id1 := post(t, ts, `{"escrows": 3, "payments": 120, "rate": 800, "crypto": "hmac", "mix": "timelock=1,htlc=1"}`)
	id2 := post(t, ts, `{"escrows": 2, "payments": 200, "rate": 1500, "crypto": "hmac", "stream": true, "liquidity": 300, "queue_patience_ms": 50}`)

	v1 := waitDone(t, ts, id1)
	v2 := waitDone(t, ts, id2)
	for _, v := range []map[string]any{v1, v2} {
		if v["status"] != "done" {
			t.Fatalf("run failed: %v", v)
		}
		result := v["result"].(map[string]any)
		if result["audit_ok"] != true || result["pending_locks"] != float64(0) {
			t.Fatalf("ledger state after run: %v", result)
		}
		prog := v["progress"].(map[string]any)
		if prog["generated"].(float64) != result["total"].(float64) {
			t.Errorf("progress generated %v != total %v", prog["generated"], result["total"])
		}
		if prog["in_flight"].(float64) != 0 || prog["queue_depth"].(float64) != 0 {
			t.Errorf("gauges not drained: %v", prog)
		}
	}

	var list struct {
		Runs []map[string]any `json:"runs"`
	}
	if code := get(t, ts, "/runs", &list); code != http.StatusOK || len(list.Runs) != 2 {
		t.Fatalf("GET /runs = %d with %d runs", code, len(list.Runs))
	}
	if list.Runs[0]["id"] != id2 {
		t.Errorf("listing not newest-first: %v", list.Runs)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	scrape := string(body)
	// Every family of the instrumented stack is present...
	for _, family := range []string{
		"xchain_sim_events_fired_total",
		"xchain_sim_virtual_time_ms",
		"xchain_net_messages_delivered_total",
		"xchain_traffic_payments_settled_total",
		"xchain_traffic_latency_ms",
		"xchain_ledger_locks_created_total",
		"xchain_ledger_ops_total",
		"xchain_sig_keygen_cache_hits_total",
		"xchain_serve_runs",
	} {
		if !strings.Contains(scrape, "# TYPE "+family+" ") {
			t.Errorf("scrape missing family %s", family)
		}
		if c := strings.Count(scrape, "# TYPE "+family+" "); c != 1 {
			t.Errorf("family %s has %d TYPE headers, want 1 (merge broken)", family, c)
		}
	}
	// ...and per-run samples are distinguished by the run label.
	for _, id := range []string{id1, id2} {
		if !strings.Contains(scrape, fmt.Sprintf(`xchain_traffic_payments_settled_total{run=%q}`, id)) {
			t.Errorf("scrape missing settled counter for %s:\n%s", id, firstLines(scrape, 40))
		}
	}
	// The streaming run alone exercised the chunk counters.
	if !strings.Contains(scrape, fmt.Sprintf(`xchain_traffic_chunks_generated_total{run=%q}`, id2)) {
		t.Errorf("scrape missing chunk counters for streaming run")
	}
	// Prometheus text format sanity: every non-comment line is
	// "name{labels} value" with a parseable float value.
	for _, line := range strings.Split(strings.TrimSuffix(scrape, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := parseFloat(fields[1]); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

// TestServeByzantineRun submits a run with a fault plan and checks the
// summary exposes the attack's footprint while the aggregate safety oracle
// stays clean, and that the Byzantine metric families reach /metrics.
func TestServeByzantineRun(t *testing.T) {
	ts := httptest.NewServer(newServer(false))
	defer ts.Close()

	id := post(t, ts, `{"escrows": 6, "payments": 300, "rate": 600, "crypto": "hmac",
		"mix": "timelock=0.4,weaklive=0.3,htlc=0.3",
		"liquidity": 1500, "queue_patience_ms": 2000,
		"fault_fraction": 0.25, "fault_behaviours": ["silent", "withhold"],
		"fault_from_ms": 50, "fault_outage_ms": 400, "manager_outage_ms": 300}`)
	v := waitDone(t, ts, id)
	if v["status"] != "done" {
		t.Fatalf("faulted run failed: %v", v)
	}
	result := v["result"].(map[string]any)
	if result["safety_violations"] != float64(0) {
		t.Fatalf("aggregate safety oracle violated: %v", result)
	}
	if result["audit_ok"] != true || result["cascade_ok"] != true || result["pending_locks"] != float64(0) {
		t.Fatalf("conservation broken under faults: %v", result)
	}
	if result["byzantine_connectors"].(float64) <= 0 {
		t.Fatalf("fault plan compiled no Byzantine connectors: %v", result)
	}
	if result["faulted_payments"].(float64) <= 0 {
		t.Fatalf("fault plan never touched a payment: %v", result)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	scrape := string(body)
	for _, family := range []string{
		"xchain_traffic_byzantine_connectors",
		"xchain_traffic_byzantine_payments_total",
		"xchain_traffic_safety_violations_total",
		"xchain_traffic_liquidity_byzantine_units",
	} {
		if !strings.Contains(scrape, "# TYPE "+family+" ") {
			t.Errorf("scrape missing family %s", family)
		}
	}
}

// TestServeValidation rejects malformed and unknown inputs synchronously.
func TestServeValidation(t *testing.T) {
	ts := httptest.NewServer(newServer(false))
	defer ts.Close()

	for _, tc := range []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"nope": 1}`},
		{"unknown protocol", `{"mix": "notaproto=1", "payments": 10}`},
		{"bad arrival", `{"arrival": "always", "payments": 10}`},
		{"bad faults", `{"faults": "c1"}`},
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
		}
	}
	if code := get(t, ts, "/runs/run-9999", nil); code != http.StatusNotFound {
		t.Errorf("missing run returned %d, want 404", code)
	}
}

// TestServeBackpressure saturates a one-slot server: the second POST gets
// 429 with Retry-After, the admission counters reach /metrics, and after
// drain() further POSTs get 503 while the in-flight run reports
// "interrupted".
func TestServeBackpressure(t *testing.T) {
	srv := newServerWith(serverOptions{maxRuns: 1, drainTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Big enough to still be executing while we probe the full surface.
	id := post(t, ts, `{"escrows": 3, "payments": 2000000, "rate": 5000, "stream": true, "crypto": "hmac"}`)

	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"payments": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	scrape := string(body)
	for _, want := range []string{
		"xchain_serve_runs_accepted_total 1",
		"xchain_serve_runs_rejected_total 1",
		"xchain_serve_runs_active 1",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, firstLines(scrape, 40))
		}
	}

	if !srv.drain() {
		t.Fatal("drain timed out")
	}
	v := waitDone(t, ts, id)
	if v["status"] != "interrupted" {
		t.Errorf("drained run status %v, want interrupted", v["status"])
	}

	resp, err = http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"payments": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", resp.StatusCode)
	}
}

// TestServeCheckpointRecovery is the crash-recovery path end to end: a
// persisted run is interrupted mid-flight by drain (leaving request +
// checkpoint, no completion marker), a second server over the same state
// dir re-adopts it under its original ID, resumes from the checkpoint and
// finishes with exactly the summary an uninterrupted run produces.
func TestServeCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := serverOptions{stateDir: dir, ckptEvery: 250, maxRuns: 2, drainTimeout: 30 * time.Second}

	srv1 := newServerWith(opts)
	if err := srv1.recover(); err != nil {
		t.Fatalf("recover over empty dir: %v", err)
	}
	ts1 := httptest.NewServer(srv1)
	body := `{"escrows": 3, "payments": 10000, "rate": 3000, "stream": true, "crypto": "hmac", "mix": "timelock=0.5,htlc=0.5"}`
	id := post(t, ts1, body)

	// Wait for a periodic checkpoint, then pull the plug mid-run.
	ckpt := filepath.Join(dir, id+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if sn, err := traffic.LoadSnapshot(ckpt); err == nil && sn.NextIndex > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	if !srv1.drain() {
		t.Fatal("drain timed out")
	}
	v := waitDone(t, ts1, id)
	ts1.Close()
	interrupted := v["status"] == "interrupted"

	if _, err := os.Stat(filepath.Join(dir, id+".req.json")); err != nil {
		t.Fatalf("request not persisted: %v", err)
	}
	if interrupted {
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("interrupted run left no checkpoint: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".done.json")); err == nil {
			t.Fatal("interrupted run has a completion marker")
		}
	}

	srv2 := newServerWith(opts)
	if err := srv2.recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	v2 := waitDone(t, ts2, id)
	if v2["status"] != "done" {
		t.Fatalf("recovered run ended %v: %v", v2["status"], v2["error"])
	}
	result := v2["result"].(map[string]any)
	if result["total"] != float64(10000) || result["audit_ok"] != true || result["pending_locks"] != float64(0) {
		t.Fatalf("recovered run result wrong: %v", result)
	}

	// Byte-identical to the uninterrupted run: determinism makes the
	// checkpoint-resume invisible in the Result.
	var req runRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	req.normalize()
	scn, wl, cfg, err := req.build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := traffic.RunWith(scn, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v2["summary"] != res.String() {
		t.Errorf("recovered summary differs from direct run:\n%v\n--\n%s", v2["summary"], res)
	}

	// The run is retired on disk and its ID is never reissued.
	if _, err := os.Stat(filepath.Join(dir, id+".done.json")); err != nil {
		t.Fatalf("finished run has no completion marker: %v", err)
	}
	if _, err := os.Stat(ckpt); err == nil {
		t.Error("retired run still has a checkpoint")
	}
	id2 := post(t, ts2, `{"payments": 10, "crypto": "hmac"}`)
	if id2 == id {
		t.Fatalf("run ID %s reissued after recovery", id2)
	}
	if v := waitDone(t, ts2, id2); v["status"] != "done" {
		t.Fatalf("follow-up run ended %v", v["status"])
	}

	// A third server sees only retired work: nothing to re-adopt.
	srv3 := newServerWith(opts)
	if err := srv3.recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	srv3.mu.Lock()
	adopted := len(srv3.runs)
	srv3.mu.Unlock()
	if adopted != 0 {
		t.Errorf("third server adopted %d retired runs", adopted)
	}
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}
