// Command xchain-serve turns the traffic engine into a long-lived HTTP
// service: clients POST workload descriptions, runs execute asynchronously
// with a live per-run metrics registry, and one Prometheus-style /metrics
// endpoint exposes every run (labelled run="<id>") together with the
// process-wide crypto cache counters.
//
// Usage:
//
//	xchain-serve [flags]
//
//	-addr :8080   listen address
//	-pprof        also serve net/http/pprof under /debug/pprof/
//
// Endpoints:
//
//	POST /runs        start a traffic run (JSON body, see runRequest);
//	                  responds 202 with the run's id and links
//	GET  /runs        list runs, newest first
//	GET  /runs/{id}   one run's live progress (counters while running,
//	                  full summary once finished)
//	GET  /metrics     Prometheus text exposition of every run + sig family
//	GET  /healthz     liveness probe
//
// Instrumentation is observation-only (see internal/metrics): a run started
// here computes byte-for-byte the same Result the CLI computes for the same
// request, whether or not anyone scrapes it.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := newServer(*withPprof)
	fmt.Fprintf(os.Stderr, "xchain-serve: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintf(os.Stderr, "xchain-serve: %v\n", err)
		os.Exit(1)
	}
}
