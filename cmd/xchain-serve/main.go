// Command xchain-serve turns the traffic engine into a long-lived HTTP
// service: clients POST workload descriptions, runs execute asynchronously
// with a live per-run metrics registry, and one Prometheus-style /metrics
// endpoint exposes every run (labelled run="<id>") together with the
// process-wide crypto cache counters.
//
// Usage:
//
//	xchain-serve [flags]
//
//	-addr :8080        listen address
//	-pprof             also serve net/http/pprof under /debug/pprof/
//	-state-dir ""      persist accepted runs here: requests before the 202,
//	                   periodic checkpoints, completion markers. On restart
//	                   the server re-adopts incomplete runs under their
//	                   original IDs, resuming from the last checkpoint.
//	-checkpoint-every  checkpoint cadence in admitted payments (with
//	                   -state-dir; default 20000)
//	-max-runs 0        concurrently executing runs before POST /runs gets
//	                   429 + Retry-After (0 = one per CPU)
//	-drain 20s         graceful-shutdown deadline: how long SIGINT/SIGTERM
//	                   waits for in-flight runs to checkpoint and stop
//
// Endpoints:
//
//	POST /runs        start a traffic run (JSON body, see runRequest);
//	                  responds 202 with the run's id and links, 429 when
//	                  saturated, 503 while draining
//	GET  /runs        list runs, newest first
//	GET  /runs/{id}   one run's live progress (counters while running,
//	                  full summary once finished)
//	GET  /metrics     Prometheus text exposition of every run + sig family
//	GET  /healthz     liveness probe
//
// Instrumentation is observation-only (see internal/metrics): a run started
// here computes byte-for-byte the same Result the CLI computes for the same
// request, whether or not anyone scrapes it. The same determinism makes
// recovery exact: a run resumed from its checkpoint — or redone from
// scratch — produces the identical Result the uninterrupted run would have.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	stateDir := flag.String("state-dir", "", "persist runs here for crash recovery (empty = no persistence)")
	ckptEvery := flag.Int("checkpoint-every", 20000, "checkpoint cadence in admitted payments (with -state-dir)")
	maxRuns := flag.Int("max-runs", 0, "concurrently executing runs before 429 (0 = one per CPU)")
	drain := flag.Duration("drain", 20*time.Second, "graceful-shutdown deadline for in-flight runs")
	flag.Parse()

	srv := newServerWith(serverOptions{
		withPprof:    *withPprof,
		stateDir:     *stateDir,
		ckptEvery:    *ckptEvery,
		maxRuns:      *maxRuns,
		drainTimeout: *drain,
	})
	if err := srv.recover(); err != nil {
		fmt.Fprintf(os.Stderr, "xchain-serve: recovery failed: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xchain-serve: listening on %s (max-runs=%d)\n", *addr, srv.opts.maxRuns)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "xchain-serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "xchain-serve: %v: draining (deadline %s)\n", sig, *drain)
	}

	// Stop admitting, interrupt in-flight runs (each writes its final
	// checkpoint), then close listeners and idle connections.
	clean := srv.drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "xchain-serve: shutdown: %v\n", err)
	}
	if !clean {
		fmt.Fprintf(os.Stderr, "xchain-serve: drain deadline exceeded; some runs may redo work on restart\n")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xchain-serve: drained cleanly\n")
}
