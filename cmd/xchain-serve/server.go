package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// runRequest is the JSON body of POST /runs. Zero values take the same
// defaults the xchain-traffic CLI uses, so `{}` is a valid request.
type runRequest struct {
	Escrows  int   `json:"escrows"`
	Seed     int64 `json:"seed"`
	Payments int   `json:"payments"`

	Arrival    string  `json:"arrival"` // poisson (default), uniform, burst
	Rate       float64 `json:"rate"`
	BurstSize  int     `json:"burst_size"`
	BurstGapMs float64 `json:"burst_gap_ms"`

	Amount     int64  `json:"amount"`
	AmountDist string `json:"amount_dist"` // fixed (default), uniform, exponential
	Spread     int64  `json:"spread"`
	Commission int64  `json:"commission"`

	Mix      string `json:"mix"` // "timelock=1,htlc=1"
	Subpaths bool   `json:"subpaths"`

	Liquidity       int64   `json:"liquidity"`
	QueuePatienceMs float64 `json:"queue_patience_ms"`
	MaxQueue        int     `json:"max_queue"`

	Faults string `json:"faults"` // "c1=silent,e0=drop-forward"

	// Fault-plan fields (see traffic.FaultPlan): a seed-derived schedule
	// turning FaultFraction of the connectors Byzantine mid-run, with
	// optional recovery windows and a weak-liveness manager outage.
	FaultFraction   float64  `json:"fault_fraction"`
	FaultBehaviours []string `json:"fault_behaviours"`
	FaultFromMs     float64  `json:"fault_from_ms"`
	FaultStaggerMs  float64  `json:"fault_stagger_ms"`
	FaultOutageMs   float64  `json:"fault_outage_ms"`
	ManagerOutageMs float64  `json:"manager_outage_ms"`

	Stream  bool   `json:"stream"`
	Workers int    `json:"workers"`
	Crypto  string `json:"crypto"`
}

// normalize fills defaults in place.
func (q *runRequest) normalize() {
	if q.Escrows == 0 {
		q.Escrows = 8
	}
	if q.Seed == 0 {
		q.Seed = 42
	}
	if q.Payments == 0 {
		q.Payments = 1000
	}
	if q.Rate == 0 {
		q.Rate = 500
	}
	if q.Amount == 0 {
		q.Amount = 100
	}
	if q.Commission == 0 {
		q.Commission = 1
	}
	if q.Mix == "" {
		q.Mix = "timelock=1"
	}
}

// build translates the request into the engine's inputs.
func (q runRequest) build() (core.Scenario, traffic.Workload, traffic.Config, error) {
	s := core.NewScenario(q.Escrows, q.Seed)
	if q.Faults != "" {
		for _, pair := range strings.Split(q.Faults, ",") {
			parts := strings.SplitN(pair, "=", 2)
			if len(parts) != 2 {
				return s, traffic.Workload{}, traffic.Config{}, fmt.Errorf("malformed faults entry %q (want participant=behaviour)", pair)
			}
			s = s.SetFault(parts[0], adversary.Spec(adversary.Behaviour(parts[1]), s.Timing))
		}
	}

	w := traffic.NewWorkload(q.Payments)
	if q.Arrival != "" {
		w.Arrival.Kind = traffic.ArrivalKind(q.Arrival)
	}
	w.Arrival.Rate = q.Rate
	if q.BurstSize > 0 {
		w.Arrival.BurstSize = q.BurstSize
	}
	w.Arrival.BurstGap = sim.Time(q.BurstGapMs * float64(sim.Millisecond))
	if q.AmountDist != "" {
		w.Amounts.Kind = traffic.AmountKind(q.AmountDist)
	}
	w.Amounts.Base = q.Amount
	w.Amounts.Spread = q.Spread
	w.Commission = q.Commission
	w.RandomSubPaths = q.Subpaths
	w.Liquidity = q.Liquidity
	w.QueuePatience = sim.Time(q.QueuePatienceMs * float64(sim.Millisecond))
	w.MaxQueue = q.MaxQueue
	if q.FaultFraction > 0 || q.ManagerOutageMs > 0 {
		w.Faults = traffic.FaultPlan{
			Fraction:      q.FaultFraction,
			Behaviours:    q.FaultBehaviours,
			From:          sim.Time(q.FaultFromMs * float64(sim.Millisecond)),
			Stagger:       sim.Time(q.FaultStaggerMs * float64(sim.Millisecond)),
			Outage:        sim.Time(q.FaultOutageMs * float64(sim.Millisecond)),
			ManagerOutage: sim.Time(q.ManagerOutageMs * float64(sim.Millisecond)),
		}
	}
	w.Mix = nil
	known := traffic.DefaultProtocols()
	for _, pair := range strings.Split(q.Mix, ",") {
		parts := strings.SplitN(pair, "=", 2)
		weight := 1.0
		if len(parts) == 2 {
			var err error
			weight, err = strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return s, w, traffic.Config{}, fmt.Errorf("malformed mix entry %q: %v", pair, err)
			}
		}
		if _, ok := known[parts[0]]; !ok {
			return s, w, traffic.Config{}, fmt.Errorf("unknown protocol %q in mix", parts[0])
		}
		w.Mix = append(w.Mix, traffic.ProtocolShare{Name: parts[0], Weight: weight})
	}

	cfg := traffic.Config{Workers: q.Workers, Stream: q.Stream, Crypto: q.Crypto}
	return s, w, cfg, nil
}

// run is one traffic run owned by the server.
type run struct {
	ID      string
	Req     runRequest
	Reg     *metrics.Registry
	Started time.Time

	mu       sync.Mutex
	status   string // "running", "done", "failed"
	errMsg   string
	summary  string
	result   *runSummary
	finished time.Time
}

// runSummary is the JSON rendering of a finished run's Result.
type runSummary struct {
	Total        int     `json:"total"`
	Succeeded    int     `json:"succeeded"`
	Failed       int     `json:"failed"`
	Rejected     int     `json:"rejected"`
	Dropped      int     `json:"dropped"`
	Errored      int     `json:"errored"`
	SuccessRate  float64 `json:"success_rate"`
	Throughput   float64 `json:"throughput_per_s"`
	MakespanMs   float64 `json:"makespan_ms"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	VolumeMoved  int64   `json:"volume_moved"`
	PeakInFlight int     `json:"peak_in_flight"`
	AuditOK      bool    `json:"audit_ok"`
	PendingLocks int     `json:"pending_locks"`

	// Byzantine/oracle fields: what the fault plan did and what the
	// aggregate safety oracle observed.
	ByzantineConnectors int      `json:"byzantine_connectors"`
	FaultedPayments     int      `json:"faulted_payments"`
	DroppedFaulted      int      `json:"dropped_faulted"`
	DroppedCapacity     int      `json:"dropped_capacity"`
	PeakByzantineHeld   int64    `json:"peak_byzantine_held"`
	SafetyViolations    int      `json:"safety_violations"`
	SafetySample        []string `json:"safety_sample,omitempty"`
	CascadeOK           bool     `json:"cascade_ok"`
}

// progress is the live part of a run's JSON view, read from its registry.
type progress struct {
	Generated  uint64  `json:"generated"`
	Simulated  uint64  `json:"simulated"`
	Settled    uint64  `json:"settled"`
	Failed     uint64  `json:"failed"`
	Rejected   uint64  `json:"rejected"`
	Expired    uint64  `json:"expired"`
	Errored    uint64  `json:"errored"`
	QueueDepth float64 `json:"queue_depth"`
	InFlight   float64 `json:"in_flight"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	VirtualMs  float64 `json:"virtual_time_ms"`
}

func (r *run) progress() progress {
	reg := r.Reg
	lat := reg.Histogram(traffic.MetricLatencyMs, "")
	return progress{
		Generated:  reg.Counter(traffic.MetricPaymentsGenerated, "").Value(),
		Simulated:  reg.Counter(traffic.MetricPaymentsSimulated, "").Value(),
		Settled:    reg.Counter(traffic.MetricPaymentsSettled, "").Value(),
		Failed:     reg.Counter(traffic.MetricPaymentsFailed, "").Value(),
		Rejected:   reg.Counter(traffic.MetricPaymentsRejected, "").Value(),
		Expired:    reg.Counter(traffic.MetricPaymentsExpired, "").Value(),
		Errored:    reg.Counter(traffic.MetricPaymentsErrored, "").Value(),
		QueueDepth: reg.Gauge(traffic.MetricQueueDepth, "").Value(),
		InFlight:   reg.Gauge(traffic.MetricInFlight, "").Value(),
		P50Ms:      lat.Quantile(0.5),
		P99Ms:      lat.Quantile(0.99),
		VirtualMs:  reg.Gauge(sim.MetricVirtualTimeMs, "").Value(),
	}
}

// server owns the run table and the base (process-wide) registry.
type server struct {
	mux  *http.ServeMux
	base *metrics.Registry

	mu    sync.Mutex
	runs  map[string]*run
	order []string // creation order
	next  int
}

// newServer builds the HTTP surface. The base registry carries process-wide
// families (the sig crypto caches and the server's own run counter); each
// run gets its own registry labelled run="<id>" so scrapes tell runs apart.
func newServer(withPprof bool) *server {
	s := &server{
		mux:  http.NewServeMux(),
		base: metrics.NewRegistry(),
		runs: map[string]*run{},
	}
	sig.RegisterMetrics(s.base)
	s.base.GaugeFunc("xchain_serve_runs", "Traffic runs owned by this server.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.runs))
	})

	s.mux.HandleFunc("POST /runs", s.handleStartRun)
	s.mux.HandleFunc("GET /runs", s.handleListRuns)
	s.mux.HandleFunc("GET /runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if withPprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once headers are out
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleStartRun validates the request, registers the run and launches it.
func (s *server) handleStartRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.normalize()
	scn, wl, cfg, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate before accepting: a rejected workload should 400 now, not
	// fail asynchronously.
	if err := wl.Validate(scn.Topology); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.next++
	id := fmt.Sprintf("run-%04d", s.next)
	ru := &run{
		ID:      id,
		Req:     req,
		Reg:     metrics.NewLabeledRegistry("run", id),
		Started: time.Now(),
		status:  "running",
	}
	s.runs[id] = ru
	s.order = append(s.order, id)
	s.mu.Unlock()

	cfg.Metrics = ru.Reg
	go func() {
		res, err := traffic.RunWith(scn, wl, cfg)
		ru.mu.Lock()
		defer ru.mu.Unlock()
		ru.finished = time.Now()
		if err != nil {
			ru.status = "failed"
			ru.errMsg = err.Error()
			return
		}
		ru.status = "done"
		ru.summary = res.String()
		ru.result = &runSummary{
			Total:        res.Total,
			Succeeded:    res.Succeeded,
			Failed:       res.Failed,
			Rejected:     res.Rejected,
			Dropped:      res.Dropped,
			Errored:      res.Errored,
			SuccessRate:  res.SuccessRate,
			Throughput:   res.Throughput,
			MakespanMs:   res.Makespan.Millis(),
			LatencyP50Ms: res.LatencyP50Ms,
			LatencyP99Ms: res.LatencyP99Ms,
			VolumeMoved:  res.VolumeMoved,
			PeakInFlight: res.PeakInFlight,
			AuditOK:      res.AuditErr == nil,
			PendingLocks: res.PendingLocks,

			ByzantineConnectors: res.ByzantineConnectors,
			FaultedPayments:     res.FaultedPayments,
			DroppedFaulted:      res.DroppedFaulted,
			DroppedCapacity:     res.DroppedCapacity,
			PeakByzantineHeld:   res.PeakByzantineHeld,
			SafetyViolations:    res.SafetyViolations,
			SafetySample:        res.SafetySample,
			CascadeOK:           res.CascadeErr == nil,
		}
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      id,
		"status":  "running",
		"run":     "/runs/" + id,
		"metrics": "/metrics",
	})
}

// runView renders one run for the JSON API.
func (s *server) runView(ru *run) map[string]any {
	ru.mu.Lock()
	status, errMsg, summary, result, finished := ru.status, ru.errMsg, ru.summary, ru.result, ru.finished
	ru.mu.Unlock()
	v := map[string]any{
		"id":       ru.ID,
		"status":   status,
		"started":  ru.Started.UTC().Format(time.RFC3339Nano),
		"progress": ru.progress(),
	}
	if !finished.IsZero() {
		v["finished"] = finished.UTC().Format(time.RFC3339Nano)
		v["elapsed_ms"] = float64(finished.Sub(ru.Started)) / float64(time.Millisecond)
	}
	if errMsg != "" {
		v["error"] = errMsg
	}
	if result != nil {
		v["result"] = result
		v["summary"] = summary
	}
	return v
}

func (s *server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ru, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.runView(ru))
}

func (s *server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(ids))) // newest first: ids are zero-padded
	views := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		ru := s.runs[id]
		s.mu.Unlock()
		views = append(views, s.runView(ru))
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

// handleMetrics renders the merged Prometheus exposition: the base registry
// plus every run's labelled registry, families deduplicated under one
// HELP/TYPE header.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	regs := make([]*metrics.Registry, 0, len(s.order)+1)
	regs = append(regs, s.base)
	for _, id := range s.order {
		regs = append(regs, s.runs[id].Reg)
	}
	s.mu.Unlock()
	snaps := make([][]metrics.Family, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, snaps...) //nolint:errcheck // client gone mid-scrape
}
