package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// runRequest is the JSON body of POST /runs. Zero values take the same
// defaults the xchain-traffic CLI uses, so `{}` is a valid request.
type runRequest struct {
	Escrows  int   `json:"escrows"`
	Seed     int64 `json:"seed"`
	Payments int   `json:"payments"`

	Arrival    string  `json:"arrival"` // poisson (default), uniform, burst
	Rate       float64 `json:"rate"`
	BurstSize  int     `json:"burst_size"`
	BurstGapMs float64 `json:"burst_gap_ms"`

	Amount     int64  `json:"amount"`
	AmountDist string `json:"amount_dist"` // fixed (default), uniform, exponential
	Spread     int64  `json:"spread"`
	Commission int64  `json:"commission"`

	Mix      string `json:"mix"` // "timelock=1,htlc=1"
	Subpaths bool   `json:"subpaths"`

	Liquidity       int64   `json:"liquidity"`
	QueuePatienceMs float64 `json:"queue_patience_ms"`
	MaxQueue        int     `json:"max_queue"`

	Faults string `json:"faults"` // "c1=silent,e0=drop-forward"

	// Fault-plan fields (see traffic.FaultPlan): a seed-derived schedule
	// turning FaultFraction of the connectors Byzantine mid-run, with
	// optional recovery windows and a weak-liveness manager outage.
	FaultFraction   float64  `json:"fault_fraction"`
	FaultBehaviours []string `json:"fault_behaviours"`
	FaultFromMs     float64  `json:"fault_from_ms"`
	FaultStaggerMs  float64  `json:"fault_stagger_ms"`
	FaultOutageMs   float64  `json:"fault_outage_ms"`
	ManagerOutageMs float64  `json:"manager_outage_ms"`

	Stream  bool   `json:"stream"`
	Workers int    `json:"workers"`
	Crypto  string `json:"crypto"`
}

// normalize fills defaults in place.
func (q *runRequest) normalize() {
	if q.Escrows == 0 {
		q.Escrows = 8
	}
	if q.Seed == 0 {
		q.Seed = 42
	}
	if q.Payments == 0 {
		q.Payments = 1000
	}
	if q.Rate == 0 {
		q.Rate = 500
	}
	if q.Amount == 0 {
		q.Amount = 100
	}
	if q.Commission == 0 {
		q.Commission = 1
	}
	if q.Mix == "" {
		q.Mix = "timelock=1"
	}
}

// build translates the request into the engine's inputs.
func (q runRequest) build() (core.Scenario, traffic.Workload, traffic.Config, error) {
	s := core.NewScenario(q.Escrows, q.Seed)
	if q.Faults != "" {
		for _, pair := range strings.Split(q.Faults, ",") {
			parts := strings.SplitN(pair, "=", 2)
			if len(parts) != 2 {
				return s, traffic.Workload{}, traffic.Config{}, fmt.Errorf("malformed faults entry %q (want participant=behaviour)", pair)
			}
			s = s.SetFault(parts[0], adversary.Spec(adversary.Behaviour(parts[1]), s.Timing))
		}
	}

	w := traffic.NewWorkload(q.Payments)
	if q.Arrival != "" {
		w.Arrival.Kind = traffic.ArrivalKind(q.Arrival)
	}
	w.Arrival.Rate = q.Rate
	if q.BurstSize > 0 {
		w.Arrival.BurstSize = q.BurstSize
	}
	w.Arrival.BurstGap = sim.Time(q.BurstGapMs * float64(sim.Millisecond))
	if q.AmountDist != "" {
		w.Amounts.Kind = traffic.AmountKind(q.AmountDist)
	}
	w.Amounts.Base = q.Amount
	w.Amounts.Spread = q.Spread
	w.Commission = q.Commission
	w.RandomSubPaths = q.Subpaths
	w.Liquidity = q.Liquidity
	w.QueuePatience = sim.Time(q.QueuePatienceMs * float64(sim.Millisecond))
	w.MaxQueue = q.MaxQueue
	if q.FaultFraction > 0 || q.ManagerOutageMs > 0 {
		w.Faults = traffic.FaultPlan{
			Fraction:      q.FaultFraction,
			Behaviours:    q.FaultBehaviours,
			From:          sim.Time(q.FaultFromMs * float64(sim.Millisecond)),
			Stagger:       sim.Time(q.FaultStaggerMs * float64(sim.Millisecond)),
			Outage:        sim.Time(q.FaultOutageMs * float64(sim.Millisecond)),
			ManagerOutage: sim.Time(q.ManagerOutageMs * float64(sim.Millisecond)),
		}
	}
	w.Mix = nil
	known := traffic.DefaultProtocols()
	for _, pair := range strings.Split(q.Mix, ",") {
		parts := strings.SplitN(pair, "=", 2)
		weight := 1.0
		if len(parts) == 2 {
			var err error
			weight, err = strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return s, w, traffic.Config{}, fmt.Errorf("malformed mix entry %q: %v", pair, err)
			}
		}
		if _, ok := known[parts[0]]; !ok {
			return s, w, traffic.Config{}, fmt.Errorf("unknown protocol %q in mix", parts[0])
		}
		w.Mix = append(w.Mix, traffic.ProtocolShare{Name: parts[0], Weight: weight})
	}

	cfg := traffic.Config{Workers: q.Workers, Stream: q.Stream, Crypto: q.Crypto}
	return s, w, cfg, nil
}

// run is one traffic run owned by the server.
type run struct {
	ID      string
	Req     runRequest
	Reg     *metrics.Registry
	Started time.Time
	Ctl     *traffic.Control

	mu       sync.Mutex
	status   string // "running", "done", "failed", "interrupted"
	errMsg   string
	summary  string
	result   *runSummary
	finished time.Time
}

// runSummary is the JSON rendering of a finished run's Result.
type runSummary struct {
	Total        int     `json:"total"`
	Succeeded    int     `json:"succeeded"`
	Failed       int     `json:"failed"`
	Rejected     int     `json:"rejected"`
	Dropped      int     `json:"dropped"`
	Errored      int     `json:"errored"`
	SuccessRate  float64 `json:"success_rate"`
	Throughput   float64 `json:"throughput_per_s"`
	MakespanMs   float64 `json:"makespan_ms"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	VolumeMoved  int64   `json:"volume_moved"`
	PeakInFlight int     `json:"peak_in_flight"`
	AuditOK      bool    `json:"audit_ok"`
	PendingLocks int     `json:"pending_locks"`

	// Byzantine/oracle fields: what the fault plan did and what the
	// aggregate safety oracle observed.
	ByzantineConnectors int      `json:"byzantine_connectors"`
	FaultedPayments     int      `json:"faulted_payments"`
	DroppedFaulted      int      `json:"dropped_faulted"`
	DroppedCapacity     int      `json:"dropped_capacity"`
	PeakByzantineHeld   int64    `json:"peak_byzantine_held"`
	SafetyViolations    int      `json:"safety_violations"`
	SafetySample        []string `json:"safety_sample,omitempty"`
	CascadeOK           bool     `json:"cascade_ok"`
}

// progress is the live part of a run's JSON view, read from its registry.
type progress struct {
	Generated  uint64  `json:"generated"`
	Simulated  uint64  `json:"simulated"`
	Settled    uint64  `json:"settled"`
	Failed     uint64  `json:"failed"`
	Rejected   uint64  `json:"rejected"`
	Expired    uint64  `json:"expired"`
	Errored    uint64  `json:"errored"`
	QueueDepth float64 `json:"queue_depth"`
	InFlight   float64 `json:"in_flight"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	VirtualMs  float64 `json:"virtual_time_ms"`
}

func (r *run) progress() progress {
	reg := r.Reg
	lat := reg.Histogram(traffic.MetricLatencyMs, "")
	return progress{
		Generated:  reg.Counter(traffic.MetricPaymentsGenerated, "").Value(),
		Simulated:  reg.Counter(traffic.MetricPaymentsSimulated, "").Value(),
		Settled:    reg.Counter(traffic.MetricPaymentsSettled, "").Value(),
		Failed:     reg.Counter(traffic.MetricPaymentsFailed, "").Value(),
		Rejected:   reg.Counter(traffic.MetricPaymentsRejected, "").Value(),
		Expired:    reg.Counter(traffic.MetricPaymentsExpired, "").Value(),
		Errored:    reg.Counter(traffic.MetricPaymentsErrored, "").Value(),
		QueueDepth: reg.Gauge(traffic.MetricQueueDepth, "").Value(),
		InFlight:   reg.Gauge(traffic.MetricInFlight, "").Value(),
		P50Ms:      lat.Quantile(0.5),
		P99Ms:      lat.Quantile(0.99),
		VirtualMs:  reg.Gauge(sim.MetricVirtualTimeMs, "").Value(),
	}
}

// serverOptions tunes the hardened surface: run persistence, checkpoint
// cadence, admission control and the drain deadline. The zero value is the
// original observation-only server (no state dir, NumCPU concurrent runs).
type serverOptions struct {
	withPprof bool
	// stateDir, when non-empty, makes accepted runs durable: the request is
	// persisted before the 202 goes out, the run checkpoints to
	// <id>.ckpt every ckptEvery payments, and a completion marker
	// <id>.done.json retires it. A restarted server re-adopts runs that
	// have a request but no marker, under their original IDs.
	stateDir  string
	ckptEvery int
	// maxRuns bounds concurrently executing runs; excess POSTs get 429 with
	// Retry-After rather than queueing unboundedly. <=0 means NumCPU.
	maxRuns int
	// drainTimeout bounds how long drain waits for interrupted runs to
	// reach a payment boundary and write their final checkpoint.
	drainTimeout time.Duration
}

// server owns the run table and the base (process-wide) registry.
type server struct {
	mux      *http.ServeMux
	base     *metrics.Registry
	opts     serverOptions
	accepted *metrics.Counter
	rejected *metrics.Counter

	mu       sync.Mutex
	runs     map[string]*run
	order    []string // creation order
	next     int
	active   int
	draining bool
	wg       sync.WaitGroup // one per executing run goroutine
}

// newServer builds the plain HTTP surface (tests and the zero-config path).
func newServer(withPprof bool) *server {
	return newServerWith(serverOptions{withPprof: withPprof})
}

// newServerWith builds the HTTP surface. The base registry carries
// process-wide families (the sig crypto caches and the server's own run and
// admission counters); each run gets its own registry labelled run="<id>" so
// scrapes tell runs apart.
func newServerWith(opts serverOptions) *server {
	if opts.maxRuns <= 0 {
		opts.maxRuns = runtime.NumCPU()
	}
	s := &server{
		mux:  http.NewServeMux(),
		base: metrics.NewRegistry(),
		opts: opts,
		runs: map[string]*run{},
	}
	sig.RegisterMetrics(s.base)
	s.base.GaugeFunc("xchain_serve_runs", "Traffic runs owned by this server.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.runs))
	})
	s.accepted = s.base.Counter("xchain_serve_runs_accepted_total", "Run requests accepted (202).")
	s.rejected = s.base.Counter("xchain_serve_runs_rejected_total", "Run requests rejected for saturation (429) or drain (503).")
	s.base.GaugeFunc("xchain_serve_runs_active", "Traffic runs currently executing.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.active)
	})

	s.mux.HandleFunc("POST /runs", s.handleStartRun)
	s.mux.HandleFunc("GET /runs", s.handleListRuns)
	s.mux.HandleFunc("GET /runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if opts.withPprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once headers are out
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleStartRun validates the request, registers the run and launches it.
func (s *server) handleStartRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.normalize()
	scn, wl, cfg, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate before accepting: a rejected workload should 400 now, not
	// fail asynchronously.
	if err := wl.Validate(scn.Topology); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.rejected.Inc()
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining, not accepting runs")
		return
	}
	if s.active >= s.opts.maxRuns {
		s.rejected.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "run capacity saturated (%d active); retry later", s.opts.maxRuns)
		return
	}
	s.next++
	id := fmt.Sprintf("run-%04d", s.next)
	ru := s.register(id, req)
	s.mu.Unlock()

	// Persist the request before the 202 goes out: an accepted run must
	// survive a crash of this process.
	if s.opts.stateDir != "" {
		if err := s.persistRequest(ru); err != nil {
			s.mu.Lock()
			s.active--
			delete(s.runs, id)
			s.order = s.order[:len(s.order)-1]
			s.mu.Unlock()
			s.wg.Done()
			writeError(w, http.StatusInternalServerError, "cannot persist run: %v", err)
			return
		}
	}
	s.accepted.Inc()
	go s.execute(ru, scn, wl, s.runConfig(ru, cfg))

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      id,
		"status":  "running",
		"run":     "/runs/" + id,
		"metrics": "/metrics",
	})
}

// register creates the run's table entry. Callers hold s.mu. The matching
// wg.Done/active-- happens when execute returns (or on persist failure).
func (s *server) register(id string, req runRequest) *run {
	ru := &run{
		ID:      id,
		Req:     req,
		Reg:     metrics.NewLabeledRegistry("run", id),
		Started: time.Now(),
		Ctl:     &traffic.Control{},
		status:  "running",
	}
	s.runs[id] = ru
	s.order = append(s.order, id)
	s.active++
	s.wg.Add(1)
	return ru
}

// runConfig attaches the server-owned execution knobs: the live registry,
// the interrupt control, and (with a state dir) the checkpoint file.
func (s *server) runConfig(ru *run, cfg traffic.Config) traffic.Config {
	cfg.Metrics = ru.Reg
	cfg.Control = ru.Ctl
	if s.opts.stateDir != "" {
		cfg.CheckpointPath = s.ckptPath(ru.ID)
		cfg.CheckpointEvery = s.opts.ckptEvery
	}
	return cfg
}

func (s *server) reqPath(id string) string  { return filepath.Join(s.opts.stateDir, id+".req.json") }
func (s *server) ckptPath(id string) string { return filepath.Join(s.opts.stateDir, id+".ckpt") }
func (s *server) donePath(id string) string { return filepath.Join(s.opts.stateDir, id+".done.json") }

// writeFileAtomic writes via a temp file + rename so a crash never leaves a
// torn state file for recovery to trip over.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // gone after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (s *server) persistRequest(ru *run) error {
	raw, err := json.MarshalIndent(ru.Req, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(s.reqPath(ru.ID), raw)
}

// execute runs the traffic engine to completion (or interruption) and
// records the outcome. With a state dir, a finished run gets a durable
// completion marker and its checkpoint retired; an interrupted run keeps
// both files so a restarted server resumes it under the same ID.
func (s *server) execute(ru *run, scn core.Scenario, wl traffic.Workload, cfg traffic.Config) {
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		s.wg.Done()
	}()
	res, err := traffic.RunWith(scn, wl, cfg)
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.finished = time.Now()
	switch {
	case errors.Is(err, traffic.ErrInterrupted):
		ru.status = "interrupted"
		ru.errMsg = "interrupted by shutdown; checkpointed for restart recovery"
		return
	case err != nil:
		ru.status = "failed"
		ru.errMsg = err.Error()
	default:
		ru.status = "done"
		ru.summary = res.String()
		ru.result = summarize(res)
	}
	if s.opts.stateDir != "" {
		s.retire(ru)
	}
}

// retire marks a run complete on disk (done or failed — both are final:
// results are deterministic, so a failed run would fail again) and removes
// its now-redundant checkpoint. Callers hold ru.mu.
func (s *server) retire(ru *run) {
	marker := map[string]any{"status": ru.status}
	if ru.errMsg != "" {
		marker["error"] = ru.errMsg
	}
	if ru.result != nil {
		marker["result"] = ru.result
		marker["summary"] = ru.summary
	}
	raw, err := json.MarshalIndent(marker, "", "  ")
	if err == nil {
		err = writeFileAtomic(s.donePath(ru.ID), raw)
	}
	if err != nil {
		// The run stays resumable; recovery will redo the tail and
		// rewrite the marker.
		fmt.Fprintf(os.Stderr, "xchain-serve: cannot retire %s: %v\n", ru.ID, err)
		return
	}
	os.Remove(s.ckptPath(ru.ID)) //nolint:errcheck // stale ckpt is harmless
}

// summarize renders a finished Result for the JSON API.
func summarize(res *traffic.Result) *runSummary {
	return &runSummary{
		Total:        res.Total,
		Succeeded:    res.Succeeded,
		Failed:       res.Failed,
		Rejected:     res.Rejected,
		Dropped:      res.Dropped,
		Errored:      res.Errored,
		SuccessRate:  res.SuccessRate,
		Throughput:   res.Throughput,
		MakespanMs:   res.Makespan.Millis(),
		LatencyP50Ms: res.LatencyP50Ms,
		LatencyP99Ms: res.LatencyP99Ms,
		VolumeMoved:  res.VolumeMoved,
		PeakInFlight: res.PeakInFlight,
		AuditOK:      res.AuditErr == nil,
		PendingLocks: res.PendingLocks,

		ByzantineConnectors: res.ByzantineConnectors,
		FaultedPayments:     res.FaultedPayments,
		DroppedFaulted:      res.DroppedFaulted,
		DroppedCapacity:     res.DroppedCapacity,
		PeakByzantineHeld:   res.PeakByzantineHeld,
		SafetyViolations:    res.SafetyViolations,
		SafetySample:        res.SafetySample,
		CascadeOK:           res.CascadeErr == nil,
	}
}

// recover re-adopts persisted runs from the state dir: every <id>.req.json
// without a completion marker is re-registered under its original ID and
// resumed from its checkpoint (or restarted from scratch when none was
// written — determinism makes the redo byte-identical). Completed runs only
// advance the ID counter so new runs never collide with retired ones.
func (s *server) recover() error {
	if s.opts.stateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.opts.stateDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.opts.stateDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".req.json") {
			ids = append(ids, strings.TrimSuffix(name, ".req.json"))
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		// Keep fresh IDs strictly above every persisted one, retired or not.
		var seq int
		if _, err := fmt.Sscanf(id, "run-%d", &seq); err == nil && seq > s.next {
			s.next = seq
		}
		if _, err := os.Stat(s.donePath(id)); err == nil {
			continue // retired
		}
		raw, err := os.ReadFile(s.reqPath(id))
		if err != nil {
			return fmt.Errorf("recover %s: %v", id, err)
		}
		var req runRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return fmt.Errorf("recover %s: corrupt request: %v", id, err)
		}
		req.normalize()
		scn, wl, cfg, err := req.build()
		if err != nil {
			return fmt.Errorf("recover %s: %v", id, err)
		}
		s.mu.Lock()
		ru := s.register(id, req)
		s.mu.Unlock()
		cfg = s.runConfig(ru, cfg)
		// A corrupt or torn checkpoint is rejected by its checksum; the run
		// then redoes the whole workload, which is safe (same Result).
		if sn, err := traffic.LoadSnapshot(s.ckptPath(id)); err == nil {
			cfg.Resume = sn
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "xchain-serve: %s: ignoring unusable checkpoint: %v\n", id, err)
		}
		fmt.Fprintf(os.Stderr, "xchain-serve: recovering %s (resume at payment %d of %d)\n", id, resumeIndex(cfg.Resume), wl.Payments)
		go s.execute(ru, scn, wl, cfg)
	}
	return nil
}

func resumeIndex(sn *traffic.RunSnapshot) int {
	if sn == nil {
		return 0
	}
	return sn.NextIndex
}

// drain stops admission, interrupts every executing run (each writes a
// final checkpoint when configured) and waits up to the drain timeout for
// the run goroutines to settle. Idempotent; safe before Shutdown.
func (s *server) drain() bool {
	s.mu.Lock()
	s.draining = true
	for _, id := range s.order {
		s.runs[id].Ctl.Interrupt()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timeout := s.opts.drainTimeout
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// runView renders one run for the JSON API.
func (s *server) runView(ru *run) map[string]any {
	ru.mu.Lock()
	status, errMsg, summary, result, finished := ru.status, ru.errMsg, ru.summary, ru.result, ru.finished
	ru.mu.Unlock()
	v := map[string]any{
		"id":       ru.ID,
		"status":   status,
		"started":  ru.Started.UTC().Format(time.RFC3339Nano),
		"progress": ru.progress(),
	}
	if !finished.IsZero() {
		v["finished"] = finished.UTC().Format(time.RFC3339Nano)
		v["elapsed_ms"] = float64(finished.Sub(ru.Started)) / float64(time.Millisecond)
	}
	if errMsg != "" {
		v["error"] = errMsg
	}
	if result != nil {
		v["result"] = result
		v["summary"] = summary
	}
	return v
}

func (s *server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ru, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.runView(ru))
}

func (s *server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(ids))) // newest first: ids are zero-padded
	views := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		ru := s.runs[id]
		s.mu.Unlock()
		views = append(views, s.runView(ru))
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

// handleMetrics renders the merged Prometheus exposition: the base registry
// plus every run's labelled registry, families deduplicated under one
// HELP/TYPE header.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	regs := make([]*metrics.Registry, 0, len(s.order)+1)
	regs = append(regs, s.base)
	for _, id := range s.order {
		regs = append(regs, s.runs[id].Reg)
	}
	s.mu.Unlock()
	snaps := make([][]metrics.Family, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, snaps...) //nolint:errcheck // client gone mid-scrape
}
