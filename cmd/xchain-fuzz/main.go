// Command xchain-fuzz is the property-based scenario fuzzer: it generates
// random protocol scenarios from consecutive seeds, runs each through the
// Definition-1/2 property checkers, and asserts the theorem-shaped oracles
// of internal/scenariogen — conforming scenarios may violate nothing,
// envelope-violating ones must keep safety while (re)discovering the
// Theorem-2 liveness/termination failures.
//
// Any oracle violation is a bug: the command prints the scenario, optionally
// shrinks it to a minimal reproducer (-shrink) and saves a replay file that
// re-executes byte-identically (-out). With no violations, -shrink instead
// minimises the first Theorem-2 counterexample found, turning the
// impossibility result into a small committed artefact.
//
//	xchain-fuzz -seeds 10000                  # the fuzzing campaign
//	xchain-fuzz -seeds 500 -require-theorem2  # CI smoke: must rediscover Thm 2
//	xchain-fuzz -replay testdata/x.json       # re-run a saved counterexample
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/scenariogen"
	"repro/internal/sig"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xchain-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds     = fs.Int("seeds", 1000, "number of consecutive seeds to fuzz")
		start     = fs.Int64("start", 0, "first seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = NumCPU)")
		families  = fs.String("families", "", "comma-separated family filter (e.g. timelock,differential)")
		shrink    = fs.Bool("shrink", false, "shrink failures (or the first Theorem-2 counterexample) to minimal replayable scenarios")
		outDir    = fs.String("out", "fuzz-failures", "directory for shrunk replay files")
		replay    = fs.String("replay", "", "verify a saved replay file instead of fuzzing")
		seedOnly  = fs.Int64("print-seed", 0, "print the scenario generated from this seed and exit")
		requireT2 = fs.Bool("require-theorem2", false, "exit non-zero unless a Theorem-2 violation is rediscovered")
		crypto    = fs.String("crypto", "", "signature backend for every run: ed25519 (default), hmac (same verdicts, cheaper campaigns)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if _, ok := sig.BackendByName(*crypto); !ok {
		fmt.Fprintf(stderr, "unknown crypto backend %q (have %v)\n", *crypto, sig.BackendNames())
		return 2
	}
	if *replay != "" {
		return runReplay(*replay, stdout, stderr)
	}
	// Native fuzzing mutates seeds across the whole int64 range, so any
	// value (including negatives) must be printable: detect the flag being
	// set rather than reserving a sentinel value.
	printSeed := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "print-seed" {
			printSeed = true
		}
	})
	if printSeed {
		sp := scenariogen.Generate(*seedOnly)
		fmt.Fprintf(stdout, "%s\nclass=%s\n%s\n", sp.Describe(), sp.Class(), sp.MarshalIndent())
		return 0
	}

	opts := scenariogen.Options{Seeds: *seeds, StartSeed: *start, Workers: *workers, Crypto: *crypto}
	for _, name := range strings.Split(*families, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		f, ok := scenariogen.ParseFamily(name)
		if !ok {
			fmt.Fprintf(stderr, "unknown family %q\n", name)
			return 2
		}
		opts.Families = append(opts.Families, f)
	}
	st := scenariogen.Fuzz(opts)
	fmt.Fprint(stdout, st)

	failed := false
	if !st.Clean() {
		failed = true
		for _, o := range st.Violations {
			fmt.Fprintf(stdout, "\nVIOLATION seed=%d: %s\n", o.Spec.Seed, o.Spec.Describe())
			for _, v := range o.Violations {
				fmt.Fprintf(stdout, "  %s\n", v)
			}
			if *shrink {
				shrinkAndSave(stdout, stderr, o, scenariogen.KeepViolation(o.Violations[0]),
					fmt.Sprintf("shrunk from seed %d: %s", o.Spec.Seed, o.Violations[0]), *outDir,
					fmt.Sprintf("violation-seed%d.json", o.Spec.Seed))
			}
		}
	}
	if st.FirstTheorem2 != nil {
		o := st.FirstTheorem2
		fmt.Fprintf(stdout, "\nfirst Theorem-2 counterexample: seed=%d %s\n  violated: %v\n",
			o.Spec.Seed, o.Spec.Describe(), o.ExpectedFailures)
		if *shrink && st.Clean() {
			prop := theorem2Property(o)
			shrinkAndSave(stdout, stderr, o, scenariogen.KeepExpectedFailure(prop),
				fmt.Sprintf("Theorem-2 counterexample shrunk from seed %d (property %s)", o.Spec.Seed, prop), *outDir,
				fmt.Sprintf("theorem2-seed%d.json", o.Spec.Seed))
		}
	} else if *requireT2 {
		fmt.Fprintln(stdout, "\nNO THEOREM-2 VIOLATION REDISCOVERED: the envelope-violating class found no T/L/CS2 failure")
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// theorem2Property picks the property to preserve while shrinking a
// Theorem-2 counterexample: termination if the schedule defeated it, else
// the first liveness-shaped failure.
func theorem2Property(o *scenariogen.Outcome) core.Property {
	for _, p := range o.ExpectedFailures {
		if p == core.PropTermination {
			return p
		}
	}
	for _, p := range o.ExpectedFailures {
		if p == core.PropStrongLiveness || p == core.PropCS2 {
			return p
		}
	}
	return o.ExpectedFailures[0]
}

// shrinkAndSave minimises the outcome's scenario and writes a replay file.
func shrinkAndSave(stdout, stderr io.Writer, o *scenariogen.Outcome, keep scenariogen.Keep, note, dir, name string) {
	res := scenariogen.Shrink(o.Spec, keep, 0)
	fmt.Fprintf(stdout, "  shrunk (%d reductions in %d tries): %s\n", res.Accepted, res.Tried, res.Spec.Describe())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "cannot create %s: %v\n", dir, err)
		return
	}
	path := filepath.Join(dir, name)
	r := scenariogen.NewReplay(res.Outcome, note)
	if err := r.Save(path); err != nil {
		fmt.Fprintf(stderr, "cannot save replay: %v\n", err)
		return
	}
	fmt.Fprintf(stdout, "  replay saved: %s (re-run with -replay %s)\n", path, path)
}

// runReplay verifies a saved counterexample.
func runReplay(path string, stdout, stderr io.Writer) int {
	r, err := scenariogen.LoadReplay(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "replaying %s\n  %s\n", path, r.Spec.Describe())
	if r.Note != "" {
		fmt.Fprintf(stdout, "  note: %s\n", r.Note)
	}
	if err := r.Verify(); err != nil {
		fmt.Fprintf(stdout, "REPLAY DIVERGED: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "reproduced: class=%s protocol=%s violated=%v theorem2=%v\n",
		r.Expect.Class, r.Expect.Protocol, r.Expect.Violated, r.Expect.Theorem2)
	return 0
}
