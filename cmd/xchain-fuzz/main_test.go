package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenariogen"
)

func TestRunCampaignClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-seeds", "60", "-require-theorem2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	for _, want := range []string{
		"property violations (bugs): 0",
		"first Theorem-2 counterexample",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunShrinkWritesReplay(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	code := run([]string{"-seeds", "60", "-shrink", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "theorem2-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shrunk replay written (err %v):\n%s", err, out.String())
	}
	// The written replay must round-trip through -replay.
	out.Reset()
	if code := run([]string{"-replay", files[0]}, &out, &errOut); code != 0 {
		t.Fatalf("replay of %s failed (exit %d):\n%s", files[0], code, out.String())
	}
	if !strings.Contains(out.String(), "reproduced:") {
		t.Errorf("replay output missing confirmation:\n%s", out.String())
	}
}

func TestRunReplayCorpusFile(t *testing.T) {
	path := filepath.Join("..", "..", "internal", "scenariogen", "testdata", "theorem2-delay-certificates.json")
	var out, errOut strings.Builder
	if code := run([]string{"-replay", path}, &out, &errOut); code != 0 {
		t.Fatalf("corpus replay failed (exit %d): %s\n%s", code, errOut.String(), out.String())
	}
}

func TestRunReplayDetectsDivergence(t *testing.T) {
	// A replay whose expectation contradicts the run must fail loudly.
	r, err := scenariogen.LoadReplay(filepath.Join("..", "..", "internal", "scenariogen", "testdata", "theorem2-delay-certificates.json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Expect.Violated = nil
	path := filepath.Join(t.TempDir(), "tampered.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-replay", path}, &out, &errOut); code != 1 {
		t.Fatalf("tampered replay accepted (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REPLAY DIVERGED") {
		t.Errorf("divergence not reported:\n%s", out.String())
	}
}

func TestRunPrintSeed(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-print-seed", "7"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "class=") || !strings.Contains(out.String(), "\"seed\": 7") {
		t.Errorf("print-seed output incomplete:\n%s", out.String())
	}
	// Native fuzzing mutates seeds across the whole int64 range: negative
	// seeds must print, not silently start a campaign.
	out.Reset()
	if code := run([]string{"-print-seed", "-42"}, &out, &errOut); code != 0 {
		t.Fatalf("negative seed exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "\"seed\": -42") {
		t.Errorf("negative print-seed output incomplete:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag accepted (exit %d)", code)
	}
	if code := run([]string{"-families", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown family accepted (exit %d)", code)
	}
	if code := run([]string{"-replay", "/no/such/file.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing replay file accepted (exit %d)", code)
	}
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h should print usage and exit 0 (exit %d)", code)
	}
}
