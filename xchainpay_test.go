package xchainpay

import (
	"testing"

	"repro/internal/core"
)

func TestQuickstartFlow(t *testing.T) {
	s := NewScenario(3, 42)
	p := TimeBounded()
	res, err := p.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BobPaid {
		t.Fatal("Bob not paid on the quickstart path")
	}
	rep := CheckTimeBounded(res, p.ParamsFor(s).Bound)
	if !rep.AllOK() {
		t.Fatalf("Definition-1 properties violated:\n%s", rep)
	}
}

func TestFacadeProtocols(t *testing.T) {
	s := NewScenario(2, 7)
	for _, id := range s.Topology.Customers() {
		s = s.SetPatience(id, 20*Second)
	}
	protocols := []Protocol{
		TimeBounded(), TimeBoundedANTA(), TimeBoundedNaive(),
		WeakLiveness(), WeakLivenessCommittee(4), HTLCBaseline(),
	}
	seen := map[string]bool{}
	for _, p := range protocols {
		if seen[p.Name()] {
			t.Errorf("duplicate protocol name %q", p.Name())
		}
		seen[p.Name()] = true
		res, err := p.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !res.BobPaid {
			t.Errorf("%s: Bob not paid on an all-honest synchronous run", p.Name())
		}
		// Properties common to every protocol family: escrows never lose
		// money and the ledgers conserve value. (Definition-1 customer
		// security is deliberately *not* satisfied by the HTLC baseline, and
		// the weak-liveness protocol is judged under Definition 2 — that is
		// what experiments E5 and E7 are about.)
		rep := CheckEventual(res)
		for _, prop := range []Property{core.PropEscrowSecurity, core.PropConservation} {
			if !rep.Verdict(prop).OK() {
				t.Errorf("%s: %s violated: %s", p.Name(), prop, rep.Verdict(prop).Detail)
			}
		}
	}
}

func TestFacadeNetworks(t *testing.T) {
	s := NewScenario(2, 3).WithNetwork(PartiallySynchronous(500*Millisecond, 50*Millisecond, 400*Millisecond))
	for _, id := range s.Topology.Customers() {
		s = s.SetPatience(id, 30*Second)
	}
	res, err := WeakLiveness().Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BobPaid {
		t.Fatal("patient customers under partial synchrony should still pay Bob")
	}
	rep := CheckWeakLiveness(res, 10*Second)
	if !rep.AllOK() {
		t.Fatalf("Definition-2 properties violated:\n%s", rep)
	}
}

func TestTrafficFacade(t *testing.T) {
	s := NewScenario(4, 11)
	w := NewWorkload(80)
	a, err := RunTraffic(s, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrafficWith(s, w, TrafficConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("traffic results differ between parallel and serial execution:\n%s\nvs\n%s", a, b)
	}
	if a.Succeeded != 80 {
		t.Fatalf("expected all 80 payments to succeed with ample liquidity:\n%s", a)
	}
	if a.AuditErr != nil {
		t.Fatalf("liquidity ledgers failed audit: %v", a.AuditErr)
	}
	points := SweepTraffic([]TrafficPoint{
		{Label: "a", Scenario: s, Workload: w},
		{Label: "b", Scenario: s.WithSeed(12), Workload: w},
	}, TrafficConfig{})
	if len(points) != 2 || points[0].Err != nil || points[1].Err != nil {
		t.Fatalf("sweep failed: %+v", points)
	}
	if points[0].Result.String() != a.String() {
		t.Fatal("sweep cell differs from the standalone run of the same point")
	}
}

func TestFacadeScenarioHelpers(t *testing.T) {
	if NewTopology(4).N != 4 {
		t.Error("NewTopology mismatch")
	}
	if DefaultTiming().MaxMsgDelay <= 0 {
		t.Error("DefaultTiming incomplete")
	}
	s := NewScenario(2, 1).SetFault("c1", FaultSpec{Silent: true})
	if !s.FaultOf("c1").Silent {
		t.Error("SetFault lost the fault")
	}
	if s.Network == nil {
		t.Error("scenario has no network")
	}
	_ = core.AllProperties() // the property vocabulary stays reachable
}
