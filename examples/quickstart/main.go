// Quickstart: Alice pays Bob across three escrows with the paper's
// time-bounded protocol (Theorem 1, Figure 2) under synchrony, then the
// outcome is checked against every property of Definition 1.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	xchainpay "repro"
)

func main() {
	// A scenario fixes everything about the run: the Fig. 1 topology with
	// n = 3 escrows (Alice, two connectors, Bob), the agreed per-hop amounts
	// (Bob receives 1000, each connector earns a 10-unit commission), the
	// synchrony assumptions, and the RNG seed that makes the run
	// reproducible.
	scenario := xchainpay.NewScenario(3, 42)

	protocol := xchainpay.TimeBounded()
	result, err := protocol.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol: %s\n", protocol.Name())
	fmt.Printf("Bob paid: %v in %v using %d messages\n\n",
		result.BobPaid, result.Duration, result.NetStats.Sent)

	for _, id := range scenario.Topology.Customers() {
		out := result.Outcome(id)
		fmt.Printf("%-3s (%-9s) net change %+5d, terminated %v, holds certificate chi: %v\n",
			id, out.Role, out.NetWealthChange(), out.Terminated, out.HoldsChi)
	}

	// The a-priori termination bound of Theorem 1 comes with the protocol's
	// derived parameters; the checker verifies the whole of Definition 1
	// against it.
	bound := protocol.ParamsFor(scenario).Bound
	report := xchainpay.CheckTimeBounded(result, bound)
	fmt.Printf("\ntermination bound: %v\n%s", bound, report)
}
