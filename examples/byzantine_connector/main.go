// Byzantine connector: a four-hop payment in which one intermediary
// (Chloe_2) receives the certificate chi but never forwards it, and a second
// run in which Bob himself withholds the certificate. The example shows the
// customer-security clauses of Definition 1 doing their work: the escrows'
// timeouts refund every honest customer, nobody who abides by the protocol
// loses money, and the runs stay within the a-priori termination bound.
//
// Run with:
//
//	go run ./examples/byzantine_connector
package main

import (
	"fmt"
	"log"

	xchainpay "repro"
)

func run(title string, scenario xchainpay.Scenario) {
	protocol := xchainpay.TimeBounded()
	result, err := protocol.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("Bob paid: %v, duration %v\n", result.BobPaid, result.Duration)
	for _, id := range scenario.Topology.Customers() {
		out := result.Outcome(id)
		marker := ""
		if scenario.FaultOf(id).IsByzantine() {
			marker = "  <- Byzantine"
		}
		fmt.Printf("  %-3s net %+5d  terminated=%v  chi=%v%s\n",
			id, out.NetWealthChange(), out.Terminated, out.HoldsChi, marker)
	}
	report := xchainpay.CheckTimeBounded(result, protocol.ParamsFor(scenario).Bound)
	fmt.Printf("all Definition-1 properties hold: %v\n\n", report.AllOK())
}

func main() {
	// Chloe_2 withholds the certificate instead of forwarding it upstream:
	// she only hurts herself — everyone upstream is refunded when the escrow
	// windows expire.
	withholding := xchainpay.NewScenario(4, 7).
		SetFault("c2", xchainpay.FaultSpec{WithholdCertificate: true})
	run("connector c2 withholds the certificate", withholding)

	// Bob never signs chi: no money moves at all, and in particular Bob is
	// not paid (CS2), while Alice and the connectors get their money back
	// (CS1, CS3).
	silentBob := xchainpay.NewScenario(4, 7).
		SetFault("c4", xchainpay.FaultSpec{WithholdCertificate: true})
	run("Bob withholds the certificate", silentBob)

	// A thieving escrow: e1 keeps the escrowed funds. Its own customers are
	// exposed (they trusted it), but customers of honest escrows remain
	// protected — exactly the scope of the paper's trust assumptions.
	thievingEscrow := xchainpay.NewScenario(4, 7).
		SetFault("e1", xchainpay.FaultSpec{StealEscrow: true})
	run("escrow e1 steals the escrowed funds", thievingEscrow)
}
