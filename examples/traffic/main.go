// Traffic: a thousand concurrent payments multiplexed over one shared
// 8-escrow chain. The workload mixes the paper's time-bounded protocol with
// weak-liveness and HTLC traffic, then the same chain is starved of
// liquidity to show admission control: payments queue for capacity and are
// dropped when their patience runs out, while every escrow ledger keeps
// conserving value exactly.
//
// Run with:
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	xchainpay "repro"
)

func main() {
	// One shared chain: Alice, seven connectors, Bob, eight escrows.
	scenario := xchainpay.NewScenario(8, 42)

	// A thousand payments arriving as a Poisson process at 500 payments per
	// simulated second, 40% time-bounded, 30% weak-liveness, 30% HTLC.
	// Liquidity is auto-sized, so admission never binds and the run shows
	// the chain's raw capacity.
	workload := xchainpay.NewWorkload(1000)
	workload.Arrival.Rate = 500
	workload = workload.WithMix(
		xchainpay.ProtocolShare{Name: "timelock", Weight: 0.4},
		xchainpay.ProtocolShare{Name: "weaklive", Weight: 0.3},
		xchainpay.ProtocolShare{Name: "htlc", Weight: 0.3},
	)

	result, err := xchainpay.RunTraffic(scenario, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- open traffic, ample liquidity ---")
	fmt.Print(result)

	// Same chain, but each escrow account now holds capacity for only a
	// handful of simultaneous payments, and bursts of 50 slam into it.
	// Blocked payments wait up to 10 simulated seconds in the admission
	// queue before being dropped.
	starved := xchainpay.NewWorkload(1000)
	starved.Arrival = xchainpay.Arrival{Kind: xchainpay.ArrivalBurst, BurstSize: 50, BurstGap: 2 * xchainpay.Second}
	starved = starved.WithLiquidity(5500).WithQueue(10*xchainpay.Second, 0)

	result, err = xchainpay.RunTraffic(scenario, starved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- burst traffic, starved liquidity, 10s queue patience ---")
	fmt.Print(result)

	// Determinism: the exact same workload on the exact same seed, executed
	// serially instead of on the worker pool, is byte-identical.
	again, err := xchainpay.RunTrafficWith(scenario, starved, xchainpay.TrafficConfig{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial re-run byte-identical: %v\n", again.String() == result.String())
}
