// Weak liveness under partial synchrony: the Theorem-3 protocol with a
// BFT notary committee as transaction manager. Three situations are shown:
//
//  1. patient customers on a network that stabilises after one second — the
//     committee commits and Bob is paid (weak liveness);
//  2. an impatient connector who aborts before the network stabilises — the
//     committee issues the abort certificate, everyone is refunded, nobody
//     loses anything;
//  3. one silent notary out of four — below the one-third threshold the
//     committee still decides.
//
// Run with:
//
//	go run ./examples/weak_liveness
package main

import (
	"fmt"
	"log"

	xchainpay "repro"
)

func run(title string, scenario xchainpay.Scenario, patience xchainpay.Time) {
	protocol := xchainpay.WeakLivenessCommittee(4)
	result, err := protocol.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("commit issued: %v   abort issued: %v   Bob paid: %v\n",
		result.CommitIssued, result.AbortIssued, result.BobPaid)
	for _, id := range scenario.Topology.Customers() {
		out := result.Outcome(id)
		fmt.Printf("  %-3s net %+5d  terminated=%v  commit-cert=%v  abort-cert=%v  lost patience=%v\n",
			id, out.NetWealthChange(), out.Terminated, out.HoldsCommitCert, out.HoldsAbortCert, out.Aborted)
	}
	report := xchainpay.CheckWeakLiveness(result, patience)
	fmt.Printf("all Definition-2 properties hold: %v\n\n", report.AllOK())
}

func main() {
	// The network is partially synchronous: messages may take up to 800ms
	// before the global stabilisation time (1s) and respect the 50ms bound
	// afterwards.
	network := xchainpay.PartiallySynchronous(
		1*xchainpay.Second, 50*xchainpay.Millisecond, 800*xchainpay.Millisecond)

	// 1. Patient customers: weak liveness delivers the payment.
	patient := xchainpay.NewScenario(3, 11).WithNetwork(network)
	for _, id := range patient.Topology.Customers() {
		patient = patient.SetPatience(id, 30*xchainpay.Second)
	}
	run("patient customers, GST = 1s", patient, 10*xchainpay.Second)

	// 2. An impatient connector aborts early; the abort certificate settles
	// every escrow and nobody loses value.
	impatient := patient.SetPatience("c1", 100*xchainpay.Millisecond)
	run("connector c1 loses patience after 100ms", impatient, 10*xchainpay.Second)

	// 3. One silent notary out of four: below the f < n/3 threshold the
	// committee still reaches its decision.
	faultyNotary := patient.SetFault("notary0", xchainpay.FaultSpec{Silent: true})
	run("one silent notary out of four", faultyNotary, 10*xchainpay.Second)
}
