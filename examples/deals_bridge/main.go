// Section-5 bridge: the same linear transfer viewed as a cross-chain payment
// (this paper) and as a cross-chain deal (Herlihy, Liskov, Shrira), plus a
// genuine multi-party swap that only the deal model can express. The example
// makes the paper's point concrete: neither problem is a special case of the
// other.
//
// Run with:
//
//	go run ./examples/deals_bridge
package main

import (
	"fmt"
	"log"

	xchainpay "repro"
	"repro/internal/core"
	"repro/internal/deals"
)

func main() {
	// A three-hop payment, as the paper's Fig. 1.
	scenario := xchainpay.NewScenario(3, 5)

	// Run it as a payment with the time-bounded protocol: Alice ends up with
	// Bob's signed certificate chi.
	payRes, err := xchainpay.TimeBounded().Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	alice := payRes.Outcome(scenario.Topology.Alice())
	fmt.Println("=== as a cross-chain payment (Figure-2 protocol) ===")
	fmt.Printf("Bob paid: %v, Alice holds chi: %v\n\n", payRes.BobPaid, alice.HoldsChi)

	// The same transfer as a deal matrix: a path graph, which is NOT
	// well-formed in the sense of Herlihy et al. (not strongly connected),
	// so their correctness theorems do not cover it — and the deal vocabulary
	// has no counterpart of chi.
	deal := deals.PaymentAsDeal(scenario.Topology, scenario.Spec)
	fmt.Println("=== the same transfer as a cross-chain deal ===")
	fmt.Print(deal)
	fmt.Printf("well-formed (strongly connected): %v\n\n", deal.WellFormed())

	// Herlihy et al.'s timelock commit protocol still completes the path
	// deal when every party complies under synchrony.
	dealRes, err := deals.TimelockCommit{}.Run(deals.Config{
		Deal:   deal,
		Timing: core.DefaultTiming(),
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deal timelock-commit: all transfers completed: %v, safety: %v, proof of payment for Alice: none (the deal model has no chi)\n\n",
		dealRes.Outcome.AllTransferred(), dealRes.Outcome.SafetyHolds())

	// The opposite direction: a three-party ring swap is a perfectly good
	// (well-formed) deal but has no linear-payment counterpart.
	ring := deals.NewDeal("alice", "bob", "carol").
		Transfer("alice", "bob", deals.Asset{Type: "coin", Amount: 5}).
		Transfer("bob", "carol", deals.Asset{Type: "token", Amount: 3}).
		Transfer("carol", "alice", deals.Asset{Type: "stamp", Amount: 1})
	fmt.Println("=== a ring swap, the other direction ===")
	fmt.Print(ring)
	fmt.Printf("well-formed deal: %v\n", ring.WellFormed())
	if _, _, err := deals.DealAsPayment(ring); err != nil {
		fmt.Printf("as a payment: %v\n", err)
	}
}
