package xchainpay

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzScenarioInvariants is the native-fuzzing entry point of the
// property-based scenario harness: each input seed expands to a full random
// scenario (chain, amounts, timing, schedule, faults, patience, protocol)
// which is executed and judged by the theorem-shaped oracles of
// internal/scenariogen. Conforming scenarios may violate no owed property;
// envelope-violating ones must keep safety. Run with `go test -fuzz
// FuzzScenarioInvariants` to search beyond the seeded corpus.
func FuzzScenarioInvariants(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sp := GenerateScenario(seed)
		out := RunScenarioSpec(sp)
		for _, v := range out.Violations {
			t.Errorf("seed %d (%s, class %s): %s", seed, sp.Describe(), out.Class, v)
		}
	})
}

// FuzzScenarioSpecRoundTrip asserts that every generated scenario survives a
// JSON round trip unchanged and keeps its class — the property that makes
// replay files trustworthy: what the fuzzer saw is exactly what a replay
// re-executes.
func FuzzScenarioSpecRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sp := GenerateScenario(seed)
		if err := sp.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v", seed, err)
		}
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var back ScenarioSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("seed %d: spec changed across JSON round trip:\n%s\nvs\n%s", seed, sp.MarshalIndent(), back.MarshalIndent())
		}
		if sp.Class() != back.Class() {
			t.Fatalf("seed %d: class changed across round trip: %s vs %s", seed, sp.Class(), back.Class())
		}
	})
}
